#ifndef MEDRELAX_ONTOLOGY_DOMAIN_ONTOLOGY_H_
#define MEDRELAX_ONTOLOGY_DOMAIN_ONTOLOGY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "medrelax/common/result.h"
#include "medrelax/common/status.h"

namespace medrelax {

/// Identifier of a concept in the domain ontology (TBox).
using OntologyConceptId = uint32_t;

/// Identifier of a relationship (role) in the domain ontology.
using RelationshipId = uint32_t;

/// Sentinel for "no ontology concept".
inline constexpr OntologyConceptId kInvalidOntologyConcept = UINT32_MAX;

/// Sentinel for "no relationship".
inline constexpr RelationshipId kInvalidRelationship = UINT32_MAX;

/// One relationship of the domain ontology with its domain (source) and
/// range (destination) concepts, e.g. Indication -hasFinding-> Finding.
/// Relationship names are not unique: Figure 1 uses "hasFinding" from both
/// Risk and Indication. The (domain, name, range) triple is unique.
struct Relationship {
  std::string name;
  OntologyConceptId domain = kInvalidOntologyConcept;
  OntologyConceptId range = kInvalidOntologyConcept;
};

/// The domain ontology (TBox) of the given KB, Section 2.1: concepts
/// relevant to the domain and the relationships (roles) among them, plus an
/// optional concept subsumption ("Risk" has descendants "Black Box
/// Warning", "Adverse Effect", "Contra Indication" in Example 3).
class DomainOntology {
 public:
  DomainOntology() = default;

  DomainOntology(DomainOntology&&) = default;
  DomainOntology& operator=(DomainOntology&&) = default;
  DomainOntology(const DomainOntology&) = delete;
  DomainOntology& operator=(const DomainOntology&) = delete;

  /// Adds a concept with a unique name.
  [[nodiscard]] Result<OntologyConceptId> AddConcept(std::string name);

  /// Adds a relationship; fails if the exact (domain, name, range) triple
  /// already exists or either endpoint is invalid.
  [[nodiscard]] Result<RelationshipId> AddRelationship(std::string name,
                                         OntologyConceptId domain,
                                         OntologyConceptId range);

  /// Declares `child` a specialization of `parent` in the TBox (e.g.
  /// AdverseEffect ⊑ Risk).
  [[nodiscard]]
  Status AddSubConcept(OntologyConceptId child, OntologyConceptId parent);

  [[nodiscard]] size_t num_concepts() const { return concept_names_.size(); }
  [[nodiscard]]
  size_t num_relationships() const { return relationships_.size(); }

  /// Name of a concept. Precondition: valid id.
  [[nodiscard]] const std::string& concept_name(OntologyConceptId id) const {
    return concept_names_[id];
  }

  /// The relationship record. Precondition: valid id.
  [[nodiscard]] const Relationship& relationship(RelationshipId id) const {
    return relationships_[id];
  }

  /// All relationships, in insertion order (Algorithm 1 lines 1-4 iterate
  /// this set to build contexts).
  [[nodiscard]] const std::vector<Relationship>& relationships() const {
    return relationships_;
  }

  /// Concept lookup by exact name; kInvalidOntologyConcept if absent.
  [[nodiscard]] OntologyConceptId FindConcept(std::string_view name) const;

  /// Relationships whose range (destination) is `concept` — the contexts a
  /// query term typed as `concept` can appear in (Section 5.1).
  std::vector<RelationshipId> RelationshipsWithRange(
      OntologyConceptId concept_id) const;

  /// Relationships whose domain (source) is `concept`.
  std::vector<RelationshipId> RelationshipsWithDomain(
      OntologyConceptId concept_id) const;

  /// Direct TBox sub-concepts of `parent`.
  [[nodiscard]]
  std::vector<OntologyConceptId> SubConcepts(OntologyConceptId parent) const;

  /// Direct TBox super-concepts of `child`.
  [[nodiscard]]
  std::vector<OntologyConceptId> SuperConcepts(OntologyConceptId child) const;

  /// True iff the id addresses an existing concept.
  [[nodiscard]] bool IsValidConcept(OntologyConceptId id) const {
    return id < concept_names_.size();
  }

 private:
  std::vector<std::string> concept_names_;
  std::unordered_map<std::string, OntologyConceptId> concept_index_;
  std::vector<Relationship> relationships_;
  std::vector<std::vector<RelationshipId>> by_range_;
  std::vector<std::vector<RelationshipId>> by_domain_;
  std::vector<std::vector<OntologyConceptId>> sub_concepts_;
  std::vector<std::vector<OntologyConceptId>> super_concepts_;
};

}  // namespace medrelax

#endif  // MEDRELAX_ONTOLOGY_DOMAIN_ONTOLOGY_H_
