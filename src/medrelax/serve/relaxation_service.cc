#include "medrelax/serve/relaxation_service.h"

#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "medrelax/common/string_util.h"

namespace medrelax {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t ElapsedNs(Clock::time_point from, Clock::time_point to) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
          .count());
}

}  // namespace

RelaxationService::RelaxationService(std::shared_ptr<Snapshot> initial,
                                     const ServiceOptions& options)
    : options_(options), cache_(options.cache) {
  registry_.Publish(std::move(initial));
  workers_.reserve(options_.num_workers);
  for (unsigned i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

RelaxationService::~RelaxationService() { Shutdown(); }

std::future<Result<RelaxResponse>> RelaxationService::Submit(
    RelaxRequest request) {
  // shared_ptr because std::function requires copyable callables and
  // std::promise is move-only; the callback fires exactly once.
  auto promise = std::make_shared<std::promise<Result<RelaxResponse>>>();
  std::future<Result<RelaxResponse>> future = promise->get_future();
  SubmitAsync(std::move(request),
              [promise](Result<RelaxResponse> response) {
                promise->set_value(std::move(response));
              });
  return future;
}

void RelaxationService::SubmitAsync(RelaxRequest request, RelaxCallback done) {
  // A negative timeout is a caller bug, not "unset": silently substituting
  // the default deadline would serve a request the client believes already
  // expired. Reject before admission; no queue slot is consumed.
  if (request.timeout < Clock::duration::zero()) {
    stats_.RecordFailed();
    done(Status::InvalidArgument(StrFormat(
        "timeout must be non-negative (got %lld ns)",
        static_cast<long long>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                request.timeout)
                .count()))));
    return;
  }
  const Clock::time_point now = Clock::now();
  Clock::time_point deadline = Clock::time_point::max();
  if (request.timeout > Clock::duration::zero()) {
    deadline = now + request.timeout;
  } else if (options_.default_deadline > std::chrono::milliseconds::zero()) {
    deadline = now + options_.default_deadline;
  }

  Status rejection = Status::OK();
  {
    MutexLock lock(queue_mu_);
    if (stopped_) {
      stats_.RecordRejectedShutdown();
      rejection = Status::FailedPrecondition("service is shut down");
    } else if (queue_.size() >= options_.queue_capacity) {
      stats_.RecordRejectedQueueFull();
      rejection = Status::ResourceExhausted(StrFormat(
          "admission queue full (%zu queued)", queue_.size()));
    } else {
      queue_.push_back(PendingRequest{std::move(request), now, deadline,
                                      std::move(done)});
      stats_.RecordAdmitted(queue_.size());
    }
  }
  if (!rejection.ok()) {
    // Outside queue_mu_: the callback may re-enter the service.
    done(std::move(rejection));
    return;
  }
  queue_cv_.NotifyOne();
}

Result<RelaxResponse> RelaxationService::Relax(RelaxRequest request) {
  std::future<Result<RelaxResponse>> future = Submit(std::move(request));
  if (options_.num_workers == 0) {
    // No background workers: pump the queue on this thread until the
    // submitted request (or a rejection) resolved the future.
    while (future.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
      if (!RunOnce()) break;
    }
  }
  return future.get();
}

bool RelaxationService::RunOnce() {
  PendingRequest pending;
  {
    MutexLock lock(queue_mu_);
    if (queue_.empty()) return false;
    pending = std::move(queue_.front());
    queue_.pop_front();
  }
  Serve(std::move(pending));
  return true;
}

void RelaxationService::WorkerLoop() {
  for (;;) {
    PendingRequest pending;
    {
      MutexLock lock(queue_mu_);
      // Explicit wait loop: a predicate lambda would read the guarded
      // members outside -Wthread-safety's view of the held lock.
      while (!stopped_ && queue_.empty()) queue_cv_.Wait(queue_mu_);
      if (queue_.empty()) return;  // stopped_ and drained
      pending = std::move(queue_.front());
      queue_.pop_front();
    }
    Serve(std::move(pending));
  }
}

void RelaxationService::Serve(PendingRequest pending) {
  // Pin the snapshot for the whole request (and for everything a batch
  // drain pulls along): a concurrent PublishSnapshot must never switch
  // the DAG under a half-served query, and sharing one pin is what makes
  // a drained group's (options fingerprint, generation) uniform.
  std::shared_ptr<const Snapshot> snap = registry_.Current();

  std::optional<ComputeItem> leader = Prepare(std::move(pending), *snap);
  if (!leader.has_value()) return;

  std::vector<ComputeItem> group;
  group.push_back(std::move(*leader));
  if (options_.max_batch > 1) {
    // The leader needs relaxer work anyway; greedily pull queued requests
    // of the same context into its shared-frontier pass. Each drained
    // request still gets the full admission treatment (deadline at this
    // dequeue, resolution, cache, single-flight) — duplicates of the
    // leader's key attach as its followers, new keys become co-leaders.
    for (PendingRequest& extra :
         DrainSameContext(group.front().pending.request.context,
                          options_.max_batch - 1)) {
      std::optional<ComputeItem> item = Prepare(std::move(extra), *snap);
      if (item.has_value()) group.push_back(std::move(*item));
    }
  }
  ComputeGroup(*snap, std::move(group));
}

std::optional<RelaxationService::ComputeItem> RelaxationService::Prepare(
    PendingRequest pending, const Snapshot& snap) {
  const Clock::time_point start = Clock::now();
  // Fail fast on requests that aged out while queued: no relaxation work,
  // and the client learns immediately instead of receiving a late answer.
  if (start > pending.deadline) {
    stats_.RecordRejectedDeadline();
    pending.done(Status::DeadlineExceeded(StrFormat(
        "deadline passed %zu us before service",
        static_cast<size_t>(ElapsedNs(pending.deadline, start) / 1000))));
    return std::nullopt;
  }

  ConceptId concept_id = pending.request.concept_id;
  if (concept_id == kInvalidConcept) {
    std::optional<ConceptMatch> match =
        snap.mapper().Map(pending.request.term);
    if (!match.has_value()) {
      stats_.RecordFailed();
      pending.done(Status::NotFound(StrFormat(
          "query term '%s' has no corresponding external concept",
          pending.request.term.c_str())));
      return std::nullopt;
    }
    concept_id = match->id;
  }
  if (concept_id >= snap.dag().num_concepts()) {
    stats_.RecordFailed();
    pending.done(Status::InvalidArgument(StrFormat(
        "concept id %zu out of range", static_cast<size_t>(concept_id))));
    return std::nullopt;
  }
  if (pending.request.context != kNoContext &&
      pending.request.context >= snap.ingestion().contexts.size()) {
    stats_.RecordFailed();
    pending.done(Status::InvalidArgument(StrFormat(
        "context id %zu out of range",
        static_cast<size_t>(pending.request.context))));
    return std::nullopt;
  }

  const size_t k = pending.request.top_k != 0
                       ? pending.request.top_k
                       : snap.relaxer().options().top_k;
  const CacheKey key{concept_id, pending.request.context,
                     static_cast<uint64_t>(k), snap.options_fingerprint(),
                     snap.generation()};

  if (std::shared_ptr<const RelaxationOutcome> cached = cache_.Lookup(key)) {
    RelaxResponse response;
    response.outcome = std::move(cached);
    response.generation = snap.generation();
    response.cache_hit = true;
    response.latency_ns = ElapsedNs(pending.enqueued_at, Clock::now());
    stats_.RecordCompleted(/*cache_hit=*/true, response.latency_ns);
    pending.done(std::move(response));
    return std::nullopt;
  }

  // Single-flight: if an identical computation is already in flight,
  // attach to it — the leader fans the outcome out when it lands. The
  // generation inside the key keeps this swap-safe: a request admitted
  // after PublishSnapshot pins the new snapshot, computes a new-generation
  // key, and can never attach to (or be fanned) a stale result.
  {
    MutexLock lock(inflight_mu_);
    auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      stats_.RecordCoalesced();
      it->second.push_back(std::move(pending));
      return std::nullopt;
    }
    inflight_.emplace(key, std::vector<PendingRequest>{});
    stats_.RecordInflightDepth(inflight_.size());
  }
  return ComputeItem{std::move(pending), key, k};
}

std::vector<RelaxationService::PendingRequest>
RelaxationService::DrainSameContext(ContextId context, size_t limit) {
  std::vector<PendingRequest> drained;
  if (limit == 0) return drained;
  MutexLock lock(queue_mu_);
  for (auto it = queue_.begin();
       it != queue_.end() && drained.size() < limit;) {
    if (it->request.context == context) {
      drained.push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  return drained;
}

void RelaxationService::ComputeGroup(const Snapshot& snap,
                                     std::vector<ComputeItem> group) {
  if (options_.pre_compute_hook_for_test) options_.pre_compute_hook_for_test();

  std::vector<PreparedQuery> queries;
  queries.reserve(group.size());
  for (const ComputeItem& item : group) {
    queries.push_back(
        PreparedQuery{item.key.concept_id, item.key.context, item.k});
  }
  // One shared GeometryEngine across the group: same-context (often
  // same-concept) queries reuse the frontier sweep.
  std::vector<RelaxationOutcome> outcomes = snap.relaxer().RelaxBatch(
      std::span<const PreparedQuery>(queries));

  for (size_t i = 0; i < group.size(); ++i) {
    auto outcome =
        std::make_shared<const RelaxationOutcome>(std::move(outcomes[i]));
    stats_.RecordRelaxStats(outcome->stats);
    cache_.Insert(group[i].key, outcome);
    // Detach the followers only after the cache insert: a racer that
    // misses the cache before the insert and checks the table after the
    // erase merely recomputes — it can never be stranded.
    std::vector<PendingRequest> followers;
    {
      MutexLock lock(inflight_mu_);
      auto it = inflight_.find(group[i].key);
      if (it != inflight_.end()) {
        followers = std::move(it->second);
        inflight_.erase(it);
      }
    }

    RelaxResponse response;
    response.outcome = outcome;
    response.generation = snap.generation();
    response.cache_hit = false;
    response.latency_ns = ElapsedNs(group[i].pending.enqueued_at,
                                    Clock::now());
    stats_.RecordCompleted(/*cache_hit=*/false, response.latency_ns);
    group[i].pending.done(std::move(response));

    for (PendingRequest& follower : followers) {
      RelaxResponse fanned;
      fanned.outcome = outcome;
      fanned.generation = snap.generation();
      fanned.cache_hit = true;
      fanned.coalesced = true;
      fanned.latency_ns = ElapsedNs(follower.enqueued_at, Clock::now());
      stats_.RecordCompleted(/*cache_hit=*/true, fanned.latency_ns);
      follower.done(std::move(fanned));
    }
  }
}

uint64_t RelaxationService::PublishSnapshot(
    std::shared_ptr<Snapshot> snapshot) {
  const uint64_t generation = registry_.Publish(std::move(snapshot));
  stats_.RecordSnapshotSwap();
  return generation;
}

size_t RelaxationService::queue_depth() const {
  MutexLock lock(queue_mu_);
  return queue_.size();
}

ServiceStatsSnapshot RelaxationService::Stats() const {
  ServiceStatsSnapshot snap = stats_.Snapshot();
  snap.admission_rejects = cache_.admission_rejects();
  snap.sweeps_completed = cache_.sweeps_completed();
  snap.activity_evictions = cache_.activity_evictions();
  return snap;
}

void RelaxationService::Shutdown() {
  std::deque<PendingRequest> orphaned;
  {
    MutexLock lock(queue_mu_);
    if (stopped_ && workers_.empty() && queue_.empty()) return;
    stopped_ = true;
    if (workers_.empty()) {
      // No workers to drain the queue: fail the backlog here so no
      // promise is ever silently broken.
      orphaned.swap(queue_);
    }
  }
  queue_cv_.NotifyAll();
  for (PendingRequest& pending : orphaned) {
    stats_.RecordRejectedShutdown();
    pending.done(
        Status::FailedPrecondition("service shut down before service"));
  }
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
}

}  // namespace medrelax
