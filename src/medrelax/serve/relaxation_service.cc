#include "medrelax/serve/relaxation_service.h"

#include <optional>
#include <utility>

#include "medrelax/common/string_util.h"

namespace medrelax {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t ElapsedNs(Clock::time_point from, Clock::time_point to) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
          .count());
}

}  // namespace

RelaxationService::RelaxationService(std::shared_ptr<Snapshot> initial,
                                     const ServiceOptions& options)
    : options_(options), cache_(options.cache) {
  registry_.Publish(std::move(initial));
  workers_.reserve(options_.num_workers);
  for (unsigned i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

RelaxationService::~RelaxationService() { Shutdown(); }

std::future<Result<RelaxResponse>> RelaxationService::Submit(
    RelaxRequest request) {
  // shared_ptr because std::function requires copyable callables and
  // std::promise is move-only; the callback fires exactly once.
  auto promise = std::make_shared<std::promise<Result<RelaxResponse>>>();
  std::future<Result<RelaxResponse>> future = promise->get_future();
  SubmitAsync(std::move(request),
              [promise](Result<RelaxResponse> response) {
                promise->set_value(std::move(response));
              });
  return future;
}

void RelaxationService::SubmitAsync(RelaxRequest request, RelaxCallback done) {
  const Clock::time_point now = Clock::now();
  Clock::time_point deadline = Clock::time_point::max();
  if (request.timeout > Clock::duration::zero()) {
    deadline = now + request.timeout;
  } else if (options_.default_deadline > std::chrono::milliseconds::zero()) {
    deadline = now + options_.default_deadline;
  }

  Status rejection = Status::OK();
  {
    MutexLock lock(queue_mu_);
    if (stopped_) {
      stats_.RecordRejectedShutdown();
      rejection = Status::FailedPrecondition("service is shut down");
    } else if (queue_.size() >= options_.queue_capacity) {
      stats_.RecordRejectedQueueFull();
      rejection = Status::ResourceExhausted(StrFormat(
          "admission queue full (%zu queued)", queue_.size()));
    } else {
      queue_.push_back(PendingRequest{std::move(request), now, deadline,
                                      std::move(done)});
      stats_.RecordAdmitted(queue_.size());
    }
  }
  if (!rejection.ok()) {
    // Outside queue_mu_: the callback may re-enter the service.
    done(std::move(rejection));
    return;
  }
  queue_cv_.NotifyOne();
}

Result<RelaxResponse> RelaxationService::Relax(RelaxRequest request) {
  std::future<Result<RelaxResponse>> future = Submit(std::move(request));
  if (options_.num_workers == 0) {
    // No background workers: pump the queue on this thread until the
    // submitted request (or a rejection) resolved the future.
    while (future.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
      if (!RunOnce()) break;
    }
  }
  return future.get();
}

bool RelaxationService::RunOnce() {
  PendingRequest pending;
  {
    MutexLock lock(queue_mu_);
    if (queue_.empty()) return false;
    pending = std::move(queue_.front());
    queue_.pop_front();
  }
  Serve(std::move(pending));
  return true;
}

void RelaxationService::WorkerLoop() {
  for (;;) {
    PendingRequest pending;
    {
      MutexLock lock(queue_mu_);
      // Explicit wait loop: a predicate lambda would read the guarded
      // members outside -Wthread-safety's view of the held lock.
      while (!stopped_ && queue_.empty()) queue_cv_.Wait(queue_mu_);
      if (queue_.empty()) return;  // stopped_ and drained
      pending = std::move(queue_.front());
      queue_.pop_front();
    }
    Serve(std::move(pending));
  }
}

void RelaxationService::Serve(PendingRequest pending) {
  const Clock::time_point start = Clock::now();
  // Fail fast on requests that aged out while queued: no relaxation work,
  // and the client learns immediately instead of receiving a late answer.
  if (start > pending.deadline) {
    stats_.RecordRejectedDeadline();
    pending.done(Status::DeadlineExceeded(StrFormat(
        "deadline passed %zu us before service",
        static_cast<size_t>(ElapsedNs(pending.deadline, start) / 1000))));
    return;
  }

  // Pin the snapshot for the whole request: a concurrent PublishSnapshot
  // must never switch the DAG under a half-served query.
  std::shared_ptr<const Snapshot> snap = registry_.Current();

  ConceptId concept_id = pending.request.concept_id;
  if (concept_id == kInvalidConcept) {
    std::optional<ConceptMatch> match =
        snap->mapper().Map(pending.request.term);
    if (!match.has_value()) {
      stats_.RecordFailed();
      pending.done(Status::NotFound(StrFormat(
          "query term '%s' has no corresponding external concept",
          pending.request.term.c_str())));
      return;
    }
    concept_id = match->id;
  }
  if (concept_id >= snap->dag().num_concepts()) {
    stats_.RecordFailed();
    pending.done(Status::InvalidArgument(StrFormat(
        "concept id %zu out of range", static_cast<size_t>(concept_id))));
    return;
  }
  if (pending.request.context != kNoContext &&
      pending.request.context >= snap->ingestion().contexts.size()) {
    stats_.RecordFailed();
    pending.done(Status::InvalidArgument(StrFormat(
        "context id %zu out of range",
        static_cast<size_t>(pending.request.context))));
    return;
  }

  const size_t k = pending.request.top_k != 0
                       ? pending.request.top_k
                       : snap->relaxer().options().top_k;
  const CacheKey key{concept_id, pending.request.context,
                     static_cast<uint64_t>(k), snap->options_fingerprint(),
                     snap->generation()};

  RelaxResponse response;
  response.generation = snap->generation();
  response.outcome = cache_.Lookup(key);
  response.cache_hit = response.outcome != nullptr;
  if (!response.cache_hit) {
    auto outcome = std::make_shared<RelaxationOutcome>(
        snap->relaxer().RelaxConceptWithK(concept_id,
                                          pending.request.context, k));
    stats_.RecordRelaxStats(outcome->stats);
    response.outcome = std::move(outcome);
    cache_.Insert(key, response.outcome);
  }
  response.latency_ns = ElapsedNs(pending.enqueued_at, Clock::now());
  stats_.RecordCompleted(response.cache_hit, response.latency_ns);
  pending.done(std::move(response));
}

uint64_t RelaxationService::PublishSnapshot(
    std::shared_ptr<Snapshot> snapshot) {
  const uint64_t generation = registry_.Publish(std::move(snapshot));
  stats_.RecordSnapshotSwap();
  return generation;
}

size_t RelaxationService::queue_depth() const {
  MutexLock lock(queue_mu_);
  return queue_.size();
}

void RelaxationService::Shutdown() {
  std::deque<PendingRequest> orphaned;
  {
    MutexLock lock(queue_mu_);
    if (stopped_ && workers_.empty() && queue_.empty()) return;
    stopped_ = true;
    if (workers_.empty()) {
      // No workers to drain the queue: fail the backlog here so no
      // promise is ever silently broken.
      orphaned.swap(queue_);
    }
  }
  queue_cv_.NotifyAll();
  for (PendingRequest& pending : orphaned) {
    stats_.RecordRejectedShutdown();
    pending.done(
        Status::FailedPrecondition("service shut down before service"));
  }
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
}

}  // namespace medrelax
