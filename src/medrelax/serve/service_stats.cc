#include "medrelax/serve/service_stats.h"

#include <algorithm>
#include <bit>

#include "medrelax/common/string_util.h"

namespace medrelax {

namespace {

size_t LatencyBucket(uint64_t latency_ns) {
  const uint64_t us = latency_ns / 1000;
  if (us == 0) return 0;
  return std::min<size_t>(std::bit_width(us),
                          ServiceStatsSnapshot::kLatencyBuckets - 1);
}

}  // namespace

void ServiceStats::RecordAdmitted(size_t queue_depth) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  uint64_t depth = static_cast<uint64_t>(queue_depth);
  uint64_t seen = queue_depth_high_water_.load(std::memory_order_relaxed);
  while (depth > seen && !queue_depth_high_water_.compare_exchange_weak(
                             seen, depth, std::memory_order_relaxed)) {
  }
}

void ServiceStats::RecordRejectedQueueFull() {
  rejected_queue_full_.fetch_add(1, std::memory_order_relaxed);
}

void ServiceStats::RecordRejectedDeadline() {
  rejected_deadline_.fetch_add(1, std::memory_order_relaxed);
}

void ServiceStats::RecordRejectedShutdown() {
  rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
}

void ServiceStats::RecordCompleted(bool cache_hit, uint64_t latency_ns) {
  completed_.fetch_add(1, std::memory_order_relaxed);
  (cache_hit ? cache_hits_ : cache_misses_)
      .fetch_add(1, std::memory_order_relaxed);
  latency_buckets_[LatencyBucket(latency_ns)].fetch_add(
      1, std::memory_order_relaxed);
}

void ServiceStats::RecordCoalesced() {
  coalesced_hits_.fetch_add(1, std::memory_order_relaxed);
}

void ServiceStats::RecordInflightDepth(size_t depth) {
  uint64_t now = static_cast<uint64_t>(depth);
  uint64_t seen = inflight_peak_.load(std::memory_order_relaxed);
  while (now > seen && !inflight_peak_.compare_exchange_weak(
                           seen, now, std::memory_order_relaxed)) {
  }
}

void ServiceStats::RecordRelaxStats(const RelaxStats& stats) {
  MutexLock lock(relax_mu_);
  relax_totals_.Accumulate(stats);
}

void ServiceStats::RecordFailed() {
  failed_.fetch_add(1, std::memory_order_relaxed);
}

void ServiceStats::RecordSnapshotSwap() {
  snapshot_swaps_.fetch_add(1, std::memory_order_relaxed);
}

void ServiceStats::RecordSnapshotSource(bool mapped, uint64_t image_load_us) {
  snapshot_source_.store(mapped ? 1 : 0, std::memory_order_relaxed);
  image_load_us_.store(mapped ? image_load_us : 0,
                       std::memory_order_relaxed);
}

void ServiceStats::RecordReloadCompleted() {
  reloads_completed_.fetch_add(1, std::memory_order_relaxed);
}

void ServiceStats::RecordConnectionOpened() {
  connections_opened_.fetch_add(1, std::memory_order_relaxed);
}

void ServiceStats::RecordConnectionClosed() {
  connections_closed_.fetch_add(1, std::memory_order_relaxed);
}

void ServiceStats::RecordConnectionRejected() {
  connections_rejected_.fetch_add(1, std::memory_order_relaxed);
}

void ServiceStats::RecordLineRejected(uint64_t count) {
  lines_rejected_.fetch_add(count, std::memory_order_relaxed);
}

ServiceStatsSnapshot ServiceStats::Snapshot() const {
  ServiceStatsSnapshot snap;
  snap.requests = requests_.load(std::memory_order_relaxed);
  snap.completed = completed_.load(std::memory_order_relaxed);
  snap.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  snap.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  snap.coalesced_hits = coalesced_hits_.load(std::memory_order_relaxed);
  snap.inflight_peak = inflight_peak_.load(std::memory_order_relaxed);
  snap.rejected_queue_full =
      rejected_queue_full_.load(std::memory_order_relaxed);
  snap.rejected_deadline = rejected_deadline_.load(std::memory_order_relaxed);
  snap.rejected_shutdown = rejected_shutdown_.load(std::memory_order_relaxed);
  snap.failed = failed_.load(std::memory_order_relaxed);
  snap.queue_depth_high_water =
      queue_depth_high_water_.load(std::memory_order_relaxed);
  snap.snapshot_swaps = snapshot_swaps_.load(std::memory_order_relaxed);
  snap.snapshot_source = snapshot_source_.load(std::memory_order_relaxed);
  snap.reloads_completed =
      reloads_completed_.load(std::memory_order_relaxed);
  snap.image_load_us = image_load_us_.load(std::memory_order_relaxed);
  snap.connections_opened =
      connections_opened_.load(std::memory_order_relaxed);
  snap.connections_closed =
      connections_closed_.load(std::memory_order_relaxed);
  snap.connections_rejected =
      connections_rejected_.load(std::memory_order_relaxed);
  snap.lines_rejected = lines_rejected_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < snap.latency_buckets.size(); ++i) {
    snap.latency_buckets[i] = latency_buckets_[i].load(
        std::memory_order_relaxed);
  }
  {
    MutexLock lock(relax_mu_);
    snap.relax = relax_totals_;
  }
  return snap;
}

std::string ServiceStatsSnapshot::ToString(bool deterministic_only) const {
  std::string out;
  out += StrFormat("requests=%zu\n", static_cast<size_t>(requests));
  out += StrFormat("completed=%zu\n", static_cast<size_t>(completed));
  out += StrFormat("cache_hits=%zu\n", static_cast<size_t>(cache_hits));
  out += StrFormat("cache_misses=%zu\n", static_cast<size_t>(cache_misses));
  // Deterministic in a closed-loop scripted session: one request is in the
  // system at a time, so coalescing never fires and the in-flight table
  // peaks at exactly one leader per miss.
  out += StrFormat("coalesced_hits=%zu\n",
                   static_cast<size_t>(coalesced_hits));
  out += StrFormat("inflight_peak=%zu\n", static_cast<size_t>(inflight_peak));
  out += StrFormat("rejected_queue_full=%zu\n",
                   static_cast<size_t>(rejected_queue_full));
  out += StrFormat("rejected_deadline=%zu\n",
                   static_cast<size_t>(rejected_deadline));
  out += StrFormat("rejected_shutdown=%zu\n",
                   static_cast<size_t>(rejected_shutdown));
  out += StrFormat("failed=%zu\n", static_cast<size_t>(failed));
  out += StrFormat("snapshot_swaps=%zu\n",
                   static_cast<size_t>(snapshot_swaps));
  // Provenance is deterministic for a scripted session: the same session
  // file replays with source=built (serve <dir>) or source=mapped
  // (serve --image); the smoke harness normalizes the one-word
  // difference when diffing built vs mapped transcripts.
  out += StrFormat("snapshot_source=%s\n",
                   snapshot_source == 1 ? "mapped" : "built");
  out += StrFormat("reloads_completed=%zu\n",
                   static_cast<size_t>(reloads_completed));
  out += StrFormat("admission_rejects=%zu\n",
                   static_cast<size_t>(admission_rejects));
  out += StrFormat("sweeps_completed=%zu\n",
                   static_cast<size_t>(sweeps_completed));
  out += StrFormat("activity_evictions=%zu\n",
                   static_cast<size_t>(activity_evictions));
  // Geometry-memo traffic (the relaxer-level aggregate) is a pure
  // function of the request sequence — same counts over stdin and TCP,
  // built and mapped — so it lives in the deterministic subset, unlike
  // the wall-clock RelaxStats timings below.
  out += StrFormat("geometry_cache_hits=%zu\n", relax.geometry_cache_hits);
  out += StrFormat("geometry_cache_misses=%zu\n",
                   relax.geometry_cache_misses);
  if (deterministic_only) return out;
  out += StrFormat("queue_depth_high_water=%zu\n",
                   static_cast<size_t>(queue_depth_high_water));
  // Wall-clock, so excluded from the deterministic subset like the
  // latency histogram below.
  out += StrFormat("image_load_us=%zu\n", static_cast<size_t>(image_load_us));
  // Transport counters stay out of the deterministic subset: stdin and
  // TCP replays of one session must print identical STATS blocks.
  out += StrFormat("connections_opened=%zu\n",
                   static_cast<size_t>(connections_opened));
  out += StrFormat("connections_closed=%zu\n",
                   static_cast<size_t>(connections_closed));
  out += StrFormat("connections_rejected=%zu\n",
                   static_cast<size_t>(connections_rejected));
  out += StrFormat("lines_rejected=%zu\n",
                   static_cast<size_t>(lines_rejected));
  out += StrFormat("relax_candidates_scanned=%zu\n",
                   relax.candidates_scanned);
  out += StrFormat("relax_neighbors_visited=%zu\n", relax.neighbors_visited);
  out += "latency_us_log2=";
  for (size_t i = 0; i < latency_buckets.size(); ++i) {
    out += StrFormat(i == 0 ? "%zu" : ",%zu",
                     static_cast<size_t>(latency_buckets[i]));
  }
  out += "\n";
  return out;
}

}  // namespace medrelax
