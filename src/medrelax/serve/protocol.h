#ifndef MEDRELAX_SERVE_PROTOCOL_H_
#define MEDRELAX_SERVE_PROTOCOL_H_

// Pure parsing layer for the newline-delimited serving protocol
// (docs/SERVING.md). Deliberately free of service, snapshot, and socket
// dependencies: the same code that parses attacker-controlled bytes in
// both server transports also runs under the fuzzer
// (fuzz/fuzz_protocol.cc) and in unit tests, so hardening lands in one
// place and covers every caller.
//
// Numeric options are overflow-checked. The old std::strtoul path
// silently wrapped `k=99999999999999999999` into an arbitrary small
// request; here any value that does not fit (or exceeds the option's
// sanity cap) is a typed InvalidArgument the transports render as a
// protocol `err` line.

#include <cstdint>
#include <string>
#include <string_view>

#include "medrelax/common/result.h"

namespace medrelax::serve {

/// Protocol verbs, in the order docs/SERVING.md lists them.
enum class Verb {
  kRelax,
  kContexts,
  kGen,
  kReload,
  kStats,
  kQuit,
  kUnknown,
};

/// Classifies a verb token (the first whitespace-delimited word of a
/// line). Verbs are case-sensitive, as they always were.
[[nodiscard]] Verb ParseVerb(std::string_view token);

/// Parsed form of one `RELAX [k=N] [timeout_ms=N] [ctx=LABEL] <term...>`
/// argument list, before any snapshot-dependent resolution (context
/// labels resolve against the live snapshot in the server, never here).
struct RelaxLine {
  uint64_t top_k = 0;        ///< 0 = absent (snapshot default)
  uint64_t timeout_ms = 0;   ///< 0 = absent (service default)
  bool has_context = false;  ///< a ctx=LABEL option was present
  std::string context_label;
  std::string term;          ///< whitespace-normalized query term
};

/// Upper bound on timeout_ms (24h). A parsed timeout is converted to a
/// steady_clock duration downstream; an unchecked 64-bit value would
/// overflow the nanosecond representation long before it made sense as
/// a deadline.
inline constexpr uint64_t kMaxTimeoutMs = 24ull * 60 * 60 * 1000;

/// Parses the text after the RELAX verb. Options are recognized only
/// before the first term token — a term may contain '=' freely, and
/// `RELAX foo k=2` queries the literal term "foo k=2". The returned
/// Status carries exactly the message the transports print after
/// "err ", so the golden transcripts pin these texts.
[[nodiscard]] Result<RelaxLine> ParseRelaxArgs(std::string_view args);

/// Overflow-checked decimal parse for protocol options; `what` names
/// the option in error messages ("k", "timeout_ms"). Rejects empty
/// text, any non-digit character, and values over 2^64-1 — no silent
/// wrap, no locale, no leading '+'/'-'/whitespace.
[[nodiscard]] Result<uint64_t> ParseProtocolCount(std::string_view text,
                                                  std::string_view what);

}  // namespace medrelax::serve

#endif  // MEDRELAX_SERVE_PROTOCOL_H_
