#ifndef MEDRELAX_SERVE_RELAXATION_SERVICE_H_
#define MEDRELAX_SERVE_RELAXATION_SERVICE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "medrelax/common/mutex.h"
#include "medrelax/common/result.h"
#include "medrelax/serve/result_cache.h"
#include "medrelax/serve/service_stats.h"
#include "medrelax/serve/snapshot.h"

namespace medrelax {

/// Knobs of the long-lived relaxation service.
struct ServiceOptions {
  /// Background workers draining the request queue. 0 = no background
  /// threads: callers pump the queue themselves with RunOnce (the
  /// single-threaded embedding and the admission-control tests use this).
  unsigned num_workers = 2;
  /// Bound of the MPMC request queue; a Submit against a full queue is
  /// rejected with ResourceExhausted instead of growing the backlog.
  size_t queue_capacity = 256;
  /// Deadline applied to requests that do not carry their own; zero means
  /// "no deadline".
  std::chrono::milliseconds default_deadline{0};
  /// Result-cache sizing; capacity 0 disables caching entirely.
  ResultCacheOptions cache;
};

/// One relaxation request. Either a surface `term` (resolved through the
/// current snapshot's mapper, Algorithm 2 line 1) or an already-resolved
/// `concept_id` (which takes precedence when valid).
struct RelaxRequest {
  std::string term;
  ConceptId concept_id = kInvalidConcept;
  ContextId context = kNoContext;
  /// 0 = the snapshot's configured top_k.
  size_t top_k = 0;
  /// Per-request deadline budget; zero falls back to
  /// ServiceOptions::default_deadline.
  std::chrono::steady_clock::duration timeout{0};
};

/// A served answer plus serving metadata.
struct RelaxResponse {
  /// Shared with the result cache: never mutated after creation, remains
  /// valid after eviction and snapshot swaps.
  std::shared_ptr<const RelaxationOutcome> outcome;
  /// Generation of the snapshot that answered.
  uint64_t generation = 0;
  bool cache_hit = false;
  /// Submit-to-answer wall time.
  uint64_t latency_ns = 0;
};

/// Completion callback of an async submit: invoked exactly once with the
/// answer or a typed rejection. Admission rejections (queue full,
/// shutdown) run it inline on the submitting thread, after every service
/// lock is released; everything else runs it on the worker (or
/// RunOnce-pumping) thread that served the request. Callbacks must not
/// block: the TCP frontend hands the formatted reply to its event loop
/// via EventLoop::Post and returns (docs/SERVING.md).
using RelaxCallback = std::function<void(Result<RelaxResponse>)>;

/// The serving layer over QueryRelaxer: owns request lifetimes so the
/// library's requests-per-second surface has explicit backpressure.
///
///   * Bounded MPMC queue + worker pool: Submit never blocks; a full queue
///     fails fast with ResourceExhausted (admission control), and requests
///     whose deadline passed while queued fail with DeadlineExceeded
///     before any relaxation work is spent on them.
///   * Result caching: answers are cached per (concept, context, k,
///     options fingerprint, snapshot generation); repeated near-identical
///     queries — the dominant relaxation workload shape — cost one lookup.
///   * Hot snapshot swap: PublishSnapshot atomically replaces the serving
///     bundle; in-flight queries finish on the snapshot they started with,
///     and the generation-scoped cache keys make stale entries
///     unreachable without any explicit invalidation pass.
///
/// Thread-safe: Submit / RunOnce / PublishSnapshot / Stats may be called
/// concurrently from any thread.
class RelaxationService {
 public:
  /// Starts the worker pool against `initial` (published as generation 1).
  RelaxationService(std::shared_ptr<Snapshot> initial,
                    const ServiceOptions& options);
  /// Stops intake, fails queued requests with FailedPrecondition, joins.
  ~RelaxationService();

  RelaxationService(const RelaxationService&) = delete;
  RelaxationService& operator=(const RelaxationService&) = delete;

  /// Enqueues a request. The future resolves to the answer, or to a typed
  /// error: ResourceExhausted (queue full), DeadlineExceeded (expired
  /// before service), NotFound (term maps to no concept), InvalidArgument
  /// (unknown context / bad request), FailedPrecondition (shutdown).
  [[nodiscard]] std::future<Result<RelaxResponse>> Submit(RelaxRequest request)
      MEDRELAX_EXCLUDES(queue_mu_);

  /// Callback form of Submit, for callers that must not block a thread
  /// per in-flight request (the epoll frontend): `done` fires exactly
  /// once per the RelaxCallback contract above. Submit is a thin wrapper
  /// over this.
  void SubmitAsync(RelaxRequest request, RelaxCallback done)
      MEDRELAX_EXCLUDES(queue_mu_);

  /// Submit + wait. With no background workers the caller's thread pumps
  /// the queue, so this works in single-threaded embeddings too.
  /// MEDRELAX_BLOCKING: waits on the answer future; loop-thread code uses
  /// SubmitAsync instead.
  [[nodiscard]] Result<RelaxResponse> Relax(RelaxRequest request)
      MEDRELAX_BLOCKING;

  /// Dequeues and serves one request on the calling thread; false when the
  /// queue is empty. The pump primitive behind num_workers = 0.
  bool RunOnce() MEDRELAX_EXCLUDES(queue_mu_);

  /// Atomically publishes `snapshot` as the new serving state and returns
  /// its generation. Never blocks queries: readers that already hold the
  /// old snapshot finish against it.
  uint64_t PublishSnapshot(std::shared_ptr<Snapshot> snapshot);

  /// The snapshot new requests are currently served from.
  [[nodiscard]] std::shared_ptr<const Snapshot> snapshot() const {
    return registry_.Current();
  }

  [[nodiscard]] ServiceStatsSnapshot Stats() const { return stats_.Snapshot(); }

  /// Mutable counter sink for the transport layer: the TCP frontend
  /// records connection lifecycle events (opened/closed/rejected,
  /// oversized lines) into the same block the STATS verb prints.
  /// ServiceStats is internally atomic, so this is thread-safe.
  [[nodiscard]] ServiceStats& TransportStats() { return stats_; }
  [[nodiscard]] const ResultCache& cache() const { return cache_; }
  [[nodiscard]] size_t queue_depth() const MEDRELAX_EXCLUDES(queue_mu_);

  /// Stops intake (further Submits fail with FailedPrecondition), drains
  /// already-admitted requests, and joins the workers. Idempotent; called
  /// by the destructor. MEDRELAX_BLOCKING: joins worker threads.
  void Shutdown() MEDRELAX_EXCLUDES(queue_mu_) MEDRELAX_BLOCKING;

 private:
  struct PendingRequest {
    RelaxRequest request;
    std::chrono::steady_clock::time_point enqueued_at;
    /// time_point::max() = no deadline.
    std::chrono::steady_clock::time_point deadline;
    /// Resolves the request (answer or typed error); fires exactly once.
    RelaxCallback done;
  };

  void WorkerLoop() MEDRELAX_EXCLUDES(queue_mu_);
  /// Serves one dequeued request end-to-end (deadline check, term
  /// resolution, cache, relaxation) and fulfills its promise. Runs
  /// lock-free: the serve path never holds queue_mu_ while it touches the
  /// registry, the cache, or the relaxer (docs/CONCURRENCY.md).
  void Serve(PendingRequest pending) MEDRELAX_EXCLUDES(queue_mu_);

  const ServiceOptions options_;
  // Each of these synchronizes internally; no member of this class is read
  // or written under two locks at once.
  SnapshotRegistry registry_;  // lint:allow(guarded-by) internally locked
  ResultCache cache_;          // lint:allow(guarded-by) internally locked
  ServiceStats stats_;         // lint:allow(guarded-by) internally locked

  mutable Mutex queue_mu_{"RelaxationService::queue_mu"};
  CondVar queue_cv_;
  std::deque<PendingRequest> queue_ MEDRELAX_GUARDED_BY(queue_mu_);
  bool stopped_ MEDRELAX_GUARDED_BY(queue_mu_) = false;
  /// Touched only before the workers start (constructor) and after they
  /// stop (Shutdown's join), both on the owning thread.
  std::vector<std::thread> workers_;  // lint:allow(guarded-by) ctor/join only
};

}  // namespace medrelax

#endif  // MEDRELAX_SERVE_RELAXATION_SERVICE_H_
