#ifndef MEDRELAX_SERVE_RELAXATION_SERVICE_H_
#define MEDRELAX_SERVE_RELAXATION_SERVICE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "medrelax/common/mutex.h"
#include "medrelax/common/result.h"
#include "medrelax/serve/result_cache.h"
#include "medrelax/serve/service_stats.h"
#include "medrelax/serve/snapshot.h"

namespace medrelax {

/// Knobs of the long-lived relaxation service.
struct ServiceOptions {
  /// Background workers draining the request queue. 0 = no background
  /// threads: callers pump the queue themselves with RunOnce (the
  /// single-threaded embedding and the admission-control tests use this).
  unsigned num_workers = 2;
  /// Bound of the MPMC request queue; a Submit against a full queue is
  /// rejected with ResourceExhausted instead of growing the backlog.
  size_t queue_capacity = 256;
  /// Deadline applied to requests that do not carry their own; zero means
  /// "no deadline".
  std::chrono::milliseconds default_deadline{0};
  /// Result-cache sizing; capacity 0 disables caching entirely.
  ResultCacheOptions cache;
  /// Same-context batch drain: a worker that dequeues a request needing
  /// relaxer work may greedily pull up to `max_batch - 1` additional
  /// queued requests with the same context and serve the whole group
  /// through one shared-frontier QueryRelaxer::RelaxBatch pass. The
  /// group shares one pinned snapshot, so (options fingerprint,
  /// generation) are uniform by construction. 0 or 1 disables draining
  /// (strict request-at-a-time dequeue).
  size_t max_batch = 8;
  /// Test-only seam: when set, runs on the serving thread after a group's
  /// in-flight entries are claimed and before the relaxer runs. Lets the
  /// concurrency tests (and the smoke script, via
  /// MEDRELAX_COMPUTE_TEST_DELAY_MS in medrelax_server) hold a leader
  /// mid-computation so followers deterministically attach. Copied at
  /// construction; never invoked under a service lock.
  std::function<void()> pre_compute_hook_for_test;
};

/// One relaxation request. Either a surface `term` (resolved through the
/// current snapshot's mapper, Algorithm 2 line 1) or an already-resolved
/// `concept_id` (which takes precedence when valid).
struct RelaxRequest {
  std::string term;
  ConceptId concept_id = kInvalidConcept;
  ContextId context = kNoContext;
  /// 0 = the snapshot's configured top_k.
  size_t top_k = 0;
  /// Per-request deadline budget; zero falls back to
  /// ServiceOptions::default_deadline.
  std::chrono::steady_clock::duration timeout{0};
};

/// A served answer plus serving metadata.
struct RelaxResponse {
  /// Shared with the result cache: never mutated after creation, remains
  /// valid after eviction and snapshot swaps.
  std::shared_ptr<const RelaxationOutcome> outcome;
  /// Generation of the snapshot that answered.
  uint64_t generation = 0;
  bool cache_hit = false;
  /// True when this answer was fanned out from an identical in-flight
  /// computation (single-flight dedup). Coalesced answers also count as
  /// cache hits: the client paid zero relaxer work.
  bool coalesced = false;
  /// Submit-to-answer wall time.
  uint64_t latency_ns = 0;
};

/// Completion callback of an async submit: invoked exactly once with the
/// answer or a typed rejection. Admission rejections (queue full,
/// shutdown) run it inline on the submitting thread, after every service
/// lock is released; everything else runs it on the worker (or
/// RunOnce-pumping) thread that served the request. Callbacks must not
/// block: the TCP frontend hands the formatted reply to its event loop
/// via EventLoop::Post and returns (docs/SERVING.md).
using RelaxCallback = std::function<void(Result<RelaxResponse>)>;

/// The serving layer over QueryRelaxer: owns request lifetimes so the
/// library's requests-per-second surface has explicit backpressure.
///
///   * Bounded MPMC queue + worker pool: Submit never blocks; a full queue
///     fails fast with ResourceExhausted (admission control), and requests
///     whose deadline passed while queued fail with DeadlineExceeded
///     before any relaxation work is spent on them.
///   * Result caching: answers are cached per (concept, context, k,
///     options fingerprint, snapshot generation); repeated near-identical
///     queries — the dominant relaxation workload shape — cost one lookup.
///   * Coalescing: concurrent identical misses are deduplicated through a
///     single-flight in-flight table (one leader computes, followers
///     attach and are fanned the shared outcome), and a worker may drain
///     queued same-context requests into one shared-frontier RelaxBatch
///     pass (ServiceOptions::max_batch; docs/SERVING.md).
///   * Hot snapshot swap: PublishSnapshot atomically replaces the serving
///     bundle; in-flight queries finish on the snapshot they started with,
///     and the generation-scoped cache keys make stale entries
///     unreachable without any explicit invalidation pass.
///
/// Thread-safe: Submit / RunOnce / PublishSnapshot / Stats may be called
/// concurrently from any thread.
class RelaxationService {
 public:
  /// Starts the worker pool against `initial` (published as generation 1).
  RelaxationService(std::shared_ptr<Snapshot> initial,
                    const ServiceOptions& options);
  /// Stops intake, fails queued requests with FailedPrecondition, joins.
  ~RelaxationService();

  RelaxationService(const RelaxationService&) = delete;
  RelaxationService& operator=(const RelaxationService&) = delete;

  /// Enqueues a request. The future resolves to the answer, or to a typed
  /// error: ResourceExhausted (queue full), DeadlineExceeded (expired
  /// before service), NotFound (term maps to no concept), InvalidArgument
  /// (unknown context / bad request), FailedPrecondition (shutdown).
  [[nodiscard]] std::future<Result<RelaxResponse>> Submit(RelaxRequest request)
      MEDRELAX_EXCLUDES(queue_mu_);

  /// Callback form of Submit, for callers that must not block a thread
  /// per in-flight request (the epoll frontend): `done` fires exactly
  /// once per the RelaxCallback contract above. Submit is a thin wrapper
  /// over this.
  void SubmitAsync(RelaxRequest request, RelaxCallback done)
      MEDRELAX_EXCLUDES(queue_mu_);

  /// Submit + wait. With no background workers the caller's thread pumps
  /// the queue, so this works in single-threaded embeddings too.
  /// MEDRELAX_BLOCKING: waits on the answer future; loop-thread code uses
  /// SubmitAsync instead.
  [[nodiscard]] Result<RelaxResponse> Relax(RelaxRequest request)
      MEDRELAX_BLOCKING;

  /// Dequeues and serves one request on the calling thread (plus any
  /// same-context requests a batch drain pulls along, when max_batch > 1);
  /// false when the queue is empty. The pump primitive behind
  /// num_workers = 0.
  bool RunOnce() MEDRELAX_EXCLUDES(queue_mu_);

  /// Atomically publishes `snapshot` as the new serving state and returns
  /// its generation. Never blocks queries: readers that already hold the
  /// old snapshot finish against it.
  uint64_t PublishSnapshot(std::shared_ptr<Snapshot> snapshot);

  /// The snapshot new requests are currently served from.
  [[nodiscard]] std::shared_ptr<const Snapshot> snapshot() const {
    return registry_.Current();
  }

  /// Service counters plus the result cache's activity-policy counters
  /// (admission rejects, sweeps, sweep evictions) merged into one
  /// coherent snapshot.
  [[nodiscard]] ServiceStatsSnapshot Stats() const;

  /// Mutable counter sink for the transport layer: the TCP frontend
  /// records connection lifecycle events (opened/closed/rejected,
  /// oversized lines) into the same block the STATS verb prints.
  /// ServiceStats is internally atomic, so this is thread-safe.
  [[nodiscard]] ServiceStats& TransportStats() { return stats_; }
  [[nodiscard]] const ResultCache& cache() const { return cache_; }
  [[nodiscard]] size_t queue_depth() const MEDRELAX_EXCLUDES(queue_mu_);

  /// Stops intake (further Submits fail with FailedPrecondition), drains
  /// already-admitted requests, and joins the workers. Idempotent; called
  /// by the destructor. MEDRELAX_BLOCKING: joins worker threads.
  void Shutdown() MEDRELAX_EXCLUDES(queue_mu_) MEDRELAX_BLOCKING;

 private:
  struct PendingRequest {
    RelaxRequest request;
    std::chrono::steady_clock::time_point enqueued_at;
    /// time_point::max() = no deadline.
    std::chrono::steady_clock::time_point deadline;
    /// Resolves the request (answer or typed error); fires exactly once.
    RelaxCallback done;
  };

  /// A request that survived the admission-side phases (deadline, term
  /// resolution, validation, cache, single-flight) and owns the in-flight
  /// entry under `key`: its relaxer work still has to run.
  struct ComputeItem {
    PendingRequest pending;
    CacheKey key;
    /// Effective top-k (explicit or the snapshot default).
    size_t k = 0;
  };

  void WorkerLoop() MEDRELAX_EXCLUDES(queue_mu_);
  /// Serves one dequeued request end-to-end (deadline check, term
  /// resolution, cache, single-flight attach, same-context batch drain,
  /// relaxation, fan-out) and fulfills its promise. Runs one-lock-at-a-
  /// time: the serve path never holds queue_mu_ or inflight_mu_ while it
  /// touches the registry, the cache, or the relaxer
  /// (docs/CONCURRENCY.md).
  void Serve(PendingRequest pending) MEDRELAX_EXCLUDES(queue_mu_);
  /// Admission-side phases for one dequeued request against the pinned
  /// `snap`. Returns the compute item when this request became the leader
  /// of a new in-flight computation; nullopt when it was fully resolved
  /// here (typed error, cache hit, or coalesced onto an existing leader).
  std::optional<ComputeItem> Prepare(PendingRequest pending,
                                     const Snapshot& snap)
      MEDRELAX_EXCLUDES(inflight_mu_);
  /// Greedily extracts up to `limit` queued requests whose context equals
  /// `context`, preserving the relative order of everything left behind.
  std::vector<PendingRequest> DrainSameContext(ContextId context,
                                               size_t limit)
      MEDRELAX_EXCLUDES(queue_mu_);
  /// Runs the relaxer once over the whole group (one shared frontier),
  /// then per item: caches the outcome, resolves the leader, and fans the
  /// same outcome out to every follower that attached while it computed.
  /// All callbacks are invoked with no service lock held.
  void ComputeGroup(const Snapshot& snap, std::vector<ComputeItem> group)
      MEDRELAX_EXCLUDES(inflight_mu_);

  const ServiceOptions options_;
  // Each of these synchronizes internally; no member of this class is read
  // or written under two locks at once.
  SnapshotRegistry registry_;  // lint:allow(guarded-by) internally locked
  ResultCache cache_;          // lint:allow(guarded-by) internally locked
  ServiceStats stats_;         // lint:allow(guarded-by) internally locked

  mutable Mutex queue_mu_{"RelaxationService::queue_mu"};
  CondVar queue_cv_;
  std::deque<PendingRequest> queue_ MEDRELAX_GUARDED_BY(queue_mu_);
  bool stopped_ MEDRELAX_GUARDED_BY(queue_mu_) = false;
  /// Single-flight rendezvous: key -> followers waiting on the leader
  /// that owns the entry. Present key = computation in flight. Like every
  /// serving-layer lock, inflight_mu_ is never held together with another
  /// lock — and never while a callback runs (docs/CONCURRENCY.md).
  mutable Mutex inflight_mu_{"RelaxationService::inflight_mu"};
  std::unordered_map<CacheKey, std::vector<PendingRequest>, CacheKeyHash>
      inflight_ MEDRELAX_GUARDED_BY(inflight_mu_);
  /// Touched only before the workers start (constructor) and after they
  /// stop (Shutdown's join), both on the owning thread.
  std::vector<std::thread> workers_;  // lint:allow(guarded-by) ctor/join only
};

}  // namespace medrelax

#endif  // MEDRELAX_SERVE_RELAXATION_SERVICE_H_
