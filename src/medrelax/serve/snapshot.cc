#include "medrelax/serve/snapshot.h"

#include <utility>

#include "medrelax/matching/edit_matcher.h"
#include "medrelax/matching/exact_matcher.h"
#include "medrelax/serve/result_cache.h"

namespace medrelax {

Snapshot::Snapshot(BuildTag, ConceptDag dag, KnowledgeBase kb)
    : dag_(std::move(dag)), kb_(std::move(kb)) {}

Result<std::shared_ptr<Snapshot>> Snapshot::Build(
    ConceptDag dag, KnowledgeBase kb, const Corpus* corpus,
    const SnapshotOptions& options) {
  // Move the inputs in first so the index/mapper/relaxer borrow pointers
  // with the snapshot's own lifetime, not the caller's.
  auto snap = std::make_shared<Snapshot>(BuildTag{}, std::move(dag),
                                         std::move(kb));
  snap->index_ = std::make_unique<NameIndex>(&snap->dag_);
  if (options.use_exact_mapper) {
    snap->mapper_ = std::make_unique<ExactMatcher>(snap->index_.get());
  } else {
    snap->mapper_ = std::make_unique<EditDistanceMatcher>(
        snap->index_.get(), EditMatcherOptions{});
  }
  Result<IngestionResult> ingestion = RunIngestion(
      snap->kb_, &snap->dag_, *snap->mapper_, corpus, options.ingestion);
  if (!ingestion.ok()) return ingestion.status();
  snap->ingestion_ = std::move(*ingestion);
  snap->relaxer_ = std::make_unique<QueryRelaxer>(
      &snap->dag_, &snap->ingestion_, snap->mapper_.get(), options.similarity,
      options.relaxation);
  snap->options_fingerprint_ =
      FingerprintOptions(options.relaxation, options.similarity);
  if (options.precompute_similarities) {
    snap->relaxer_->PrecomputeSimilarities();
  }
  return snap;
}

std::shared_ptr<const Snapshot> SnapshotRegistry::Current() const {
  ReaderLock lock(mu_);
  return current_;
}

uint64_t SnapshotRegistry::Publish(std::shared_ptr<Snapshot> snapshot) {
  const uint64_t generation =
      generations_.fetch_add(1, std::memory_order_acq_rel) + 1;
  snapshot->generation_ = generation;
  WriterLock lock(mu_);
  current_ = std::move(snapshot);
  return generation;
}

}  // namespace medrelax
