#include "medrelax/serve/snapshot.h"

#include <chrono>
#include <utility>

#include "medrelax/common/string_util.h"
#include "medrelax/flat/snapshot_codec.h"
#include "medrelax/matching/edit_matcher.h"
#include "medrelax/matching/exact_matcher.h"
#include "medrelax/serve/result_cache.h"

namespace medrelax {

Snapshot::Snapshot(BuildTag, ConceptDag dag, KnowledgeBase kb)
    : dag_(std::move(dag)), kb_(std::move(kb)) {}

// Out of line: ~unique_ptr<flat::FlatImageView> needs the complete type,
// forward-declared in the header.
Snapshot::~Snapshot() = default;

Result<std::shared_ptr<Snapshot>> Snapshot::Build(
    ConceptDag dag, KnowledgeBase kb, const Corpus* corpus,
    const SnapshotOptions& options) {
  // Move the inputs in first so the index/mapper/relaxer borrow pointers
  // with the snapshot's own lifetime, not the caller's.
  auto snap = std::make_shared<Snapshot>(BuildTag{}, std::move(dag),
                                         std::move(kb));
  snap->index_ = std::make_unique<NameIndex>(&snap->dag_);
  if (options.use_exact_mapper) {
    snap->mapper_ = std::make_unique<ExactMatcher>(snap->index_.get());
  } else {
    snap->mapper_ = std::make_unique<EditDistanceMatcher>(
        snap->index_.get(), EditMatcherOptions{});
  }
  Result<IngestionResult> ingestion = RunIngestion(
      snap->kb_, &snap->dag_, *snap->mapper_, corpus, options.ingestion);
  if (!ingestion.ok()) return ingestion.status();
  snap->ingestion_ = std::move(*ingestion);
  snap->relaxer_ = std::make_unique<QueryRelaxer>(
      &snap->dag_, &snap->ingestion_, snap->mapper_.get(), options.similarity,
      options.relaxation);
  snap->options_ = options;
  snap->options_fingerprint_ =
      FingerprintOptions(options.relaxation, options.similarity);
  if (options.precompute_similarities) {
    snap->relaxer_->PrecomputeSimilarities();
  }
  return snap;
}

Result<std::shared_ptr<Snapshot>> Snapshot::LoadFromImage(
    const std::string& path) {
  const auto start = std::chrono::steady_clock::now();
  MEDRELAX_ASSIGN_OR_RETURN(flat::DecodedSnapshotImage decoded,
                            flat::ReadSnapshotImage(path));

  // The knobs round-trip through the image; the fingerprint stored at
  // ingest time must survive recomputation, or this build's fingerprint
  // scheme has drifted from the producer's — cached results and cache
  // keys would silently disagree.
  SnapshotOptions options;
  options.ingestion = decoded.config.ingestion;
  options.similarity = decoded.config.similarity;
  options.relaxation = decoded.config.relaxation;
  options.use_exact_mapper = decoded.config.use_exact_mapper;
  options.precompute_similarities = decoded.config.precompute_similarities;
  const uint64_t recomputed =
      FingerprintOptions(options.relaxation, options.similarity);
  if (recomputed != decoded.options_fingerprint) {
    return Status::InvalidArgument(
        StrFormat("'%s': stored options fingerprint %016llx does not match"
                  " recomputed %016llx (incompatible producer)",
                  path.c_str(),
                  static_cast<unsigned long long>(decoded.options_fingerprint),
                  static_cast<unsigned long long>(recomputed)));
  }

  auto snap = std::make_shared<Snapshot>(BuildTag{}, std::move(decoded.dag),
                                         std::move(decoded.kb));
  snap->image_ = std::move(decoded.image);
  snap->ingestion_ = std::move(decoded.ingestion);
  // The index, mapper, and relaxer borrow the snapshot's own structures,
  // exactly as in Build — only Algorithm 1 itself is skipped.
  snap->index_ = std::make_unique<NameIndex>(&snap->dag_);
  if (options.use_exact_mapper) {
    snap->mapper_ = std::make_unique<ExactMatcher>(snap->index_.get());
  } else {
    snap->mapper_ = std::make_unique<EditDistanceMatcher>(
        snap->index_.get(), EditMatcherOptions{});
  }
  snap->relaxer_ = std::make_unique<QueryRelaxer>(
      &snap->dag_, &snap->ingestion_, snap->mapper_.get(), options.similarity,
      options.relaxation);
  snap->options_ = options;
  snap->options_fingerprint_ = decoded.options_fingerprint;
  snap->source_ = SnapshotSource::kMapped;
  if (options.precompute_similarities) {
    snap->relaxer_->PrecomputeSimilarities();
  }
  snap->load_micros_ = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  return snap;
}

Status Snapshot::WriteImage(const std::string& path) const {
  flat::ImageSnapshotConfig config;
  config.ingestion = options_.ingestion;
  config.similarity = options_.similarity;
  config.relaxation = options_.relaxation;
  config.use_exact_mapper = options_.use_exact_mapper;
  config.precompute_similarities = options_.precompute_similarities;
  return flat::WriteSnapshotImage(dag_, kb_, ingestion_, config,
                                  options_fingerprint_, path);
}

std::shared_ptr<const Snapshot> SnapshotRegistry::Current() const {
  ReaderLock lock(mu_);
  return current_;
}

uint64_t SnapshotRegistry::Publish(std::shared_ptr<Snapshot> snapshot) {
  const uint64_t generation =
      generations_.fetch_add(1, std::memory_order_acq_rel) + 1;
  snapshot->generation_ = generation;
  WriterLock lock(mu_);
  current_ = std::move(snapshot);
  return generation;
}

}  // namespace medrelax
