#ifndef MEDRELAX_SERVE_SERVICE_STATS_H_
#define MEDRELAX_SERVE_SERVICE_STATS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "medrelax/common/mutex.h"
#include "medrelax/relax/relax_stats.h"

namespace medrelax {

/// A coherent copy of the service counters at one instant, safe to read,
/// print, and diff without synchronization.
struct ServiceStatsSnapshot {
  /// log2-microsecond end-to-end latency histogram: bucket i counts
  /// requests with latency < 2^i microseconds (the last bucket is
  /// unbounded). Covers 1 us .. ~32 s.
  static constexpr size_t kLatencyBuckets = 16;

  uint64_t requests = 0;          ///< admitted into the queue
  uint64_t completed = 0;         ///< answered (hit or computed)
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;      ///< answered by running the relaxer
  /// Answered by attaching to an identical in-flight computation
  /// (single-flight dedup); every coalesced answer is also a cache_hit,
  /// so cache_hits + cache_misses == completed stays an invariant.
  uint64_t coalesced_hits = 0;
  /// High-water mark of concurrent in-flight computations (leaders).
  uint64_t inflight_peak = 0;
  uint64_t rejected_queue_full = 0;
  uint64_t rejected_deadline = 0; ///< expired before a worker got to them
  uint64_t rejected_shutdown = 0;
  uint64_t failed = 0;            ///< mapping/validation errors
  uint64_t queue_depth_high_water = 0;
  uint64_t snapshot_swaps = 0;
  /// How the current snapshot came to exist: 0 = built by the offline
  /// phase in-process, 1 = mapped from a flat image (SnapshotSource).
  uint64_t snapshot_source = 0;
  /// RELOADs that produced and published a new snapshot (failed reloads
  /// leave the counter alone — the old generation keeps serving).
  uint64_t reloads_completed = 0;
  /// Result-cache activity-policy counters, merged in from the cache by
  /// RelaxationService::Stats(): inserts rejected by the second-hit
  /// admission filter, bottom-activity sweep passes completed, and
  /// entries those sweeps evicted. Deterministic for a scripted session:
  /// admission and sweeps depend only on the request sequence.
  uint64_t admission_rejects = 0;
  uint64_t sweeps_completed = 0;
  uint64_t activity_evictions = 0;
  /// Microseconds the most recent image map-and-rehydrate took; 0 when
  /// the current snapshot was built rather than mapped. Wall-clock, so
  /// outside the deterministic ToString subset.
  uint64_t image_load_us = 0;
  /// Transport (TCP frontend) counters. Deliberately outside the
  /// deterministic ToString subset: the same scripted session must
  /// produce one transcript over stdin (0 connections) and TCP (1).
  uint64_t connections_opened = 0;
  uint64_t connections_closed = 0;
  uint64_t connections_rejected = 0;  ///< over the connection cap
  uint64_t lines_rejected = 0;        ///< oversized-line disconnects
  std::array<uint64_t, kLatencyBuckets> latency_buckets{};
  /// Relaxer-level instrumentation accumulated over every cache miss
  /// (the PR 2 RelaxStats plumbing, aggregated service-wide).
  RelaxStats relax;

  /// Multi-line human-readable block (one `key=value` per line, stable
  /// order), used by the medrelax_server STATS verb. Latency buckets and
  /// RelaxStats timings are wall-clock-dependent, so `deterministic_only`
  /// omits them for golden-file diffs.
  [[nodiscard]] std::string ToString(bool deterministic_only = false) const;
};

/// Lock-free counter block every service entry point reports into.
/// Counters are relaxed atomics: totals are exact once the writers are
/// quiescent, and monotone (never torn) while they run. The RelaxStats
/// aggregate is mutex-guarded (it is a plain struct of many fields).
class ServiceStats {
 public:
  ServiceStats() = default;
  ServiceStats(const ServiceStats&) = delete;
  ServiceStats& operator=(const ServiceStats&) = delete;

  /// A request entered the queue, which now holds `queue_depth` entries.
  void RecordAdmitted(size_t queue_depth);
  void RecordRejectedQueueFull();
  void RecordRejectedDeadline();
  void RecordRejectedShutdown();
  /// A request was answered; `latency_ns` is submit-to-answer wall time.
  void RecordCompleted(bool cache_hit, uint64_t latency_ns);
  /// A request attached to an identical in-flight computation instead of
  /// running the relaxer (single-flight dedup).
  void RecordCoalesced();
  /// The in-flight table grew to `depth` concurrent computations.
  void RecordInflightDepth(size_t depth);
  /// Relaxer instrumentation of one computed (cache-miss) answer.
  void RecordRelaxStats(const RelaxStats& stats) MEDRELAX_EXCLUDES(relax_mu_);
  void RecordFailed();
  void RecordSnapshotSwap();
  /// The published snapshot's provenance: `mapped` = flat image,
  /// otherwise the in-process offline build. `image_load_us` is the
  /// map-and-rehydrate time for mapped snapshots (0 for built ones).
  void RecordSnapshotSource(bool mapped, uint64_t image_load_us);
  /// A RELOAD produced and published a replacement snapshot.
  void RecordReloadCompleted();
  /// Transport accounting, reported by the TCP frontend: sessions that
  /// reached the protocol layer, sessions torn down, accepts rejected at
  /// the connection cap, and lines dropped for exceeding the size limit.
  void RecordConnectionOpened();
  void RecordConnectionClosed();
  void RecordConnectionRejected();
  /// `count` oversized lines were dropped — a connection can reject more
  /// than one before it is torn down, so the sink takes the true count
  /// instead of a per-connection flag.
  void RecordLineRejected(uint64_t count = 1);

  [[nodiscard]] ServiceStatsSnapshot Snapshot() const
      MEDRELAX_EXCLUDES(relax_mu_);

 private:
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
  std::atomic<uint64_t> coalesced_hits_{0};
  std::atomic<uint64_t> inflight_peak_{0};
  std::atomic<uint64_t> rejected_queue_full_{0};
  std::atomic<uint64_t> rejected_deadline_{0};
  std::atomic<uint64_t> rejected_shutdown_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> queue_depth_high_water_{0};
  std::atomic<uint64_t> snapshot_swaps_{0};
  std::atomic<uint64_t> snapshot_source_{0};
  std::atomic<uint64_t> reloads_completed_{0};
  std::atomic<uint64_t> image_load_us_{0};
  std::atomic<uint64_t> connections_opened_{0};
  std::atomic<uint64_t> connections_closed_{0};
  std::atomic<uint64_t> connections_rejected_{0};
  std::atomic<uint64_t> lines_rejected_{0};
  std::array<std::atomic<uint64_t>, ServiceStatsSnapshot::kLatencyBuckets>
      latency_buckets_{};
  mutable Mutex relax_mu_{"ServiceStats::relax_mu"};
  RelaxStats relax_totals_ MEDRELAX_GUARDED_BY(relax_mu_);
};

}  // namespace medrelax

#endif  // MEDRELAX_SERVE_SERVICE_STATS_H_
