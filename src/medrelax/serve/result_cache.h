#ifndef MEDRELAX_SERVE_RESULT_CACHE_H_
#define MEDRELAX_SERVE_RESULT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "medrelax/common/mutex.h"
#include "medrelax/relax/query_relaxer.h"

namespace medrelax {

/// Identity of one cacheable relaxation answer. Repeated [query term,
/// context] traffic is the dominant workload shape, so the key is the
/// *resolved* concept (term mapping is deterministic per snapshot) plus
/// everything that can change the answer:
///   - k (the paper's top-k is part of the result shape, not a suffix);
///   - an options fingerprint (similarity + relaxation knobs), so two
///     differently configured snapshots never share entries;
///   - the snapshot generation, so a snapshot swap implicitly invalidates
///     every older entry — stale keys simply stop being looked up and age
///     out of the LRU.
struct CacheKey {
  ConceptId concept_id = kInvalidConcept;
  ContextId context = kNoContext;
  uint64_t top_k = 0;
  uint64_t options_fingerprint = 0;
  uint64_t generation = 0;

  friend bool operator==(const CacheKey&, const CacheKey&) = default;
};

/// 64-bit mix of a cache key (splitmix64 over the fields); also selects
/// the shard.
[[nodiscard]] uint64_t HashCacheKey(const CacheKey& key);

/// Hash functor over CacheKey for unordered containers keyed by answer
/// identity — the cache shards below and the service's single-flight
/// in-flight table share it.
struct CacheKeyHash {
  size_t operator()(const CacheKey& key) const {
    return static_cast<size_t>(HashCacheKey(key));
  }
};

/// Order-insensitive fingerprint of the knobs that shape an answer.
[[nodiscard]] uint64_t FingerprintOptions(const RelaxationOptions& relaxation,
                                          const SimilarityOptions& similarity);

/// Knobs of the serving result cache.
struct ResultCacheOptions {
  /// Total entries across all shards; 0 disables caching (every Lookup
  /// misses, Insert is a no-op).
  size_t capacity = 4096;
  /// Lock shards (rounded up to a power of two) so concurrent workers
  /// rarely contend on one mutex.
  size_t num_shards = 8;
};

/// A sharded LRU cache of finished relaxation outcomes. Values are
/// shared_ptr-to-const, so a hit hands back the cached outcome without
/// copying and eviction never invalidates a response a client still holds.
///
/// Thread-safe: each shard holds its own mutex; the hit/miss/eviction
/// counters are atomics.
class ResultCache {
 public:
  explicit ResultCache(const ResultCacheOptions& options);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// The cached outcome for `key`, promoting it to most-recently-used;
  /// nullptr on a miss.
  [[nodiscard]] std::shared_ptr<const RelaxationOutcome> Lookup(
      const CacheKey& key);

  /// Inserts (or refreshes) `key`, evicting the shard's least-recently-used
  /// entry when the shard is at capacity.
  void Insert(const CacheKey& key,
              std::shared_ptr<const RelaxationOutcome> outcome);

  /// Drops every entry (the counters survive).
  void Clear();

  /// Current number of cached entries across all shards.
  [[nodiscard]] size_t size() const;

  [[nodiscard]] uint64_t hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

  /// Entries one shard may hold (capacity distributed over the shards).
  [[nodiscard]] size_t shard_capacity() const { return shard_capacity_; }
  [[nodiscard]] size_t num_shards() const { return shards_.size(); }

 private:
  struct Entry {
    CacheKey key;
    std::shared_ptr<const RelaxationOutcome> outcome;
  };
  struct Shard {
    /// One detector site for all shards: shards are never nested, and a
    /// per-shard order against the rest of the system is what matters.
    mutable Mutex mu{"ResultCache::Shard::mu"};
    /// Front = most recently used; back = eviction candidate.
    std::list<Entry> lru MEDRELAX_GUARDED_BY(mu);
    std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash>
        index MEDRELAX_GUARDED_BY(mu);
  };

  [[nodiscard]] Shard& ShardFor(const CacheKey& key) {
    // The low hash bits pick the bucket inside the shard's map; use the
    // high bits for shard selection so the two stay independent.
    return shards_[(HashCacheKey(key) >> 48) & shard_mask_];
  }

  size_t shard_capacity_;
  uint64_t shard_mask_;
  std::vector<Shard> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace medrelax

#endif  // MEDRELAX_SERVE_RESULT_CACHE_H_
