#ifndef MEDRELAX_SERVE_RESULT_CACHE_H_
#define MEDRELAX_SERVE_RESULT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "medrelax/common/cache_policy.h"
#include "medrelax/common/mutex.h"
#include "medrelax/relax/query_relaxer.h"

namespace medrelax {

/// Identity of one cacheable relaxation answer. Repeated [query term,
/// context] traffic is the dominant workload shape, so the key is the
/// *resolved* concept (term mapping is deterministic per snapshot) plus
/// everything that can change the answer:
///   - k (the paper's top-k is part of the result shape, not a suffix);
///   - an options fingerprint (similarity + relaxation knobs), so two
///     differently configured snapshots never share entries;
///   - the snapshot generation, so a snapshot swap implicitly invalidates
///     every older entry — stale keys simply stop being looked up and age
///     out of the cache.
struct CacheKey {
  ConceptId concept_id = kInvalidConcept;
  ContextId context = kNoContext;
  uint64_t top_k = 0;
  uint64_t options_fingerprint = 0;
  uint64_t generation = 0;

  friend bool operator==(const CacheKey&, const CacheKey&) = default;
};

/// 64-bit mix of a cache key (splitmix64 over the fields); also selects
/// the shard.
[[nodiscard]] uint64_t HashCacheKey(const CacheKey& key);

/// Hash functor over CacheKey for unordered containers keyed by answer
/// identity — the cache shards below and the service's single-flight
/// in-flight table share it.
struct CacheKeyHash {
  size_t operator()(const CacheKey& key) const {
    return static_cast<size_t>(HashCacheKey(key));
  }
};

/// Order-insensitive fingerprint of the knobs that shape an answer.
[[nodiscard]] uint64_t FingerprintOptions(const RelaxationOptions& relaxation,
                                          const SimilarityOptions& similarity);

/// Knobs of the serving result cache.
struct ResultCacheOptions {
  /// Total entries across all shards; 0 disables caching (every Lookup
  /// misses, Insert is a no-op). The bound is global: shard capacities
  /// are sized so their sum never exceeds this value.
  size_t capacity = 4096;
  /// Lock shards (rounded up to a power of two, then clamped so tiny
  /// capacities still respect the global bound) so concurrent workers
  /// rarely contend on one mutex.
  size_t num_shards = 8;
  /// Eviction policy (common/cache_policy.h). The decayed-activity
  /// default keeps the hot set resident under skewed scan-polluted
  /// traffic; `kLru` restores the pre-policy behavior exactly. The
  /// policy never changes what an answer contains, so it is deliberately
  /// not part of the options fingerprint.
  CachePolicy policy;
};

/// A sharded cache of finished relaxation outcomes. Values are
/// shared_ptr-to-const, so a hit hands back the cached outcome without
/// copying and eviction never invalidates a response a client still holds.
///
/// Under the default decayed-activity policy (see CachePolicy) a hit
/// bumps the entry's activity with a geometrically growing increment,
/// first-time keys are rejected by a second-hit admission sketch while
/// the shard is full, and overflowing shards are trimmed by a
/// bottom-activity sweep instead of strict LRU eviction. Under `kLru`
/// the cache behaves exactly as before the policy existed.
///
/// Thread-safe: each shard holds its own mutex; sweeps additionally
/// serialize on a cache-level sweep mutex acquired *before* the swept
/// shard's mutex (docs/CONCURRENCY.md); counters are atomics.
class ResultCache {
 public:
  explicit ResultCache(const ResultCacheOptions& options);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// The cached outcome for `key`, promoting it to most-recently-used and
  /// (under the activity policy) bumping its activity; nullptr on a miss.
  [[nodiscard]] std::shared_ptr<const RelaxationOutcome> Lookup(
      const CacheKey& key) MEDRELAX_EXCLUDES(sweep_mu_);

  /// Inserts (or refreshes) `key`. LRU policy: evicts the shard's
  /// least-recently-used entry when the shard is at capacity. Activity
  /// policy: a first-seen key against a full shard is rejected by the
  /// admission sketch; an admitted overflow triggers a bottom-activity
  /// sweep of the shard.
  void Insert(const CacheKey& key,
              std::shared_ptr<const RelaxationOutcome> outcome)
      MEDRELAX_EXCLUDES(sweep_mu_);

  /// Drops every entry and resets the admission sketches (the counters
  /// survive).
  void Clear() MEDRELAX_EXCLUDES(sweep_mu_);

  /// Current number of cached entries across all shards.
  [[nodiscard]] size_t size() const;

  [[nodiscard]] uint64_t hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  /// All evictions, regardless of policy (LRU pop-backs plus sweep
  /// victims).
  [[nodiscard]] uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// Inserts rejected by the second-hit admission filter.
  [[nodiscard]] uint64_t admission_rejects() const {
    return admission_rejects_.load(std::memory_order_relaxed);
  }
  /// Bottom-activity sweep passes completed.
  [[nodiscard]] uint64_t sweeps_completed() const {
    return sweeps_completed_.load(std::memory_order_relaxed);
  }
  /// Entries evicted by sweeps (subset of evictions()).
  [[nodiscard]] uint64_t activity_evictions() const {
    return activity_evictions_.load(std::memory_order_relaxed);
  }
  /// Activity rescales performed when the bump increment overflowed.
  [[nodiscard]] uint64_t rescales() const {
    return rescales_.load(std::memory_order_relaxed);
  }

  /// Entries one shard may hold. Shard capacities are floor-divided from
  /// the total, so num_shards() * shard_capacity() <= the configured
  /// capacity always holds.
  [[nodiscard]] size_t shard_capacity() const { return shard_capacity_; }
  [[nodiscard]] size_t num_shards() const { return shards_.size(); }

 private:
  struct Entry {
    CacheKey key;
    std::shared_ptr<const RelaxationOutcome> outcome;
    /// Decayed-activity score; meaningful only under kDecayedActivity.
    double activity = 0.0;
  };
  struct Shard {
    /// One detector site for all shards: shards are never nested, and a
    /// per-shard order against the rest of the system is what matters.
    mutable Mutex mu{"ResultCache::Shard::mu"};
    /// Front = most recently used; back = eviction candidate / sweep
    /// tie-break loser.
    std::list<Entry> lru MEDRELAX_GUARDED_BY(mu);
    std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash>
        index MEDRELAX_GUARDED_BY(mu);
    /// Current activity increment; grows by 1/decay_factor per hit so
    /// older contributions decay relative to fresh ones.
    double bump MEDRELAX_GUARDED_BY(mu) = 1.0;
    /// Second-hit admission doorkeeper, consulted only when the shard is
    /// full.
    AdmissionSketch sketch MEDRELAX_GUARDED_BY(mu){0};
  };

  /// Delegation target: sizing is computed once and lands in the const
  /// members above the shard vector that shares it.
  ResultCache(const ResultCacheOptions& options, ShardSizing sizing);

  [[nodiscard]] Shard& ShardFor(const CacheKey& key) {
    // The low hash bits pick the bucket inside the shard's map; use the
    // high bits for shard selection so the two stay independent.
    return shards_[(HashCacheKey(key) >> 48) & shard_mask_];
  }

  /// Bumps `entry`'s activity with the shard's current increment, growing
  /// the increment and rescaling the whole shard when it overflows.
  void BumpActivity(Shard& shard, Entry& entry)
      MEDRELAX_REQUIRES(shard.mu);
  /// Evicts the bottom-activity fraction of `shard` (recency breaking
  /// ties, least recent first). Serializes on sweep_mu_, then re-acquires
  /// the shard mutex — sweep_mu_ is ordered before every shard mutex.
  void SweepShard(Shard& shard) MEDRELAX_EXCLUDES(sweep_mu_);

  const size_t shard_capacity_;
  const uint64_t shard_mask_;
  const CachePolicy policy_;
  /// Serializes sweeps across the cache so concurrent overflowing inserts
  /// do not stampede the same shard; acquired before the shard mutex.
  mutable Mutex sweep_mu_{"ResultCache::sweep_mu"};
  std::vector<Shard> shards_;  // lint:allow(guarded-by) per-shard mu inside
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> admission_rejects_{0};
  std::atomic<uint64_t> sweeps_completed_{0};
  std::atomic<uint64_t> activity_evictions_{0};
  std::atomic<uint64_t> rescales_{0};
};

}  // namespace medrelax

#endif  // MEDRELAX_SERVE_RESULT_CACHE_H_
