#ifndef MEDRELAX_SERVE_SNAPSHOT_H_
#define MEDRELAX_SERVE_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "medrelax/common/mutex.h"
#include "medrelax/common/result.h"
#include "medrelax/corpus/document.h"
#include "medrelax/graph/concept_dag.h"
#include "medrelax/kb/kb_query.h"
#include "medrelax/matching/matcher.h"
#include "medrelax/matching/name_index.h"
#include "medrelax/relax/ingestion.h"
#include "medrelax/relax/query_relaxer.h"

namespace medrelax {

namespace flat {
class FlatImageView;
}  // namespace flat

/// How a snapshot came to exist: built from raw inputs by the full
/// offline phase, or mapped from a flat image medrelax_ingest froze
/// earlier (docs/SNAPSHOT_FORMAT.md).
enum class SnapshotSource {
  kBuilt,
  kMapped,
};

/// Knobs of a serving snapshot build: everything the offline phase needs to
/// turn a raw (EKS, KB) pair into a query-ready bundle.
struct SnapshotOptions {
  IngestionOptions ingestion;
  SimilarityOptions similarity;
  RelaxationOptions relaxation;
  /// Term mapper bound to the snapshot's own DAG: exact match only, or the
  /// edit-distance matcher (tau = 2) the paper's EDIT configuration uses.
  bool use_exact_mapper = false;
  /// Warm the pair-geometry memoization before the snapshot is published,
  /// so its first queries run at steady-state latency.
  bool precompute_similarities = false;
};

/// One immutable, query-ready bundle of serving state: the customized
/// external DAG, the KB it was customized against, the ingestion artifacts
/// (Algorithm 1's C/F/M/FEC), a term mapper bound to that DAG, and a
/// configured QueryRelaxer borrowing all of the above.
///
/// Snapshots are built offline and published through a SnapshotRegistry;
/// readers hold them via std::shared_ptr, so a publish never invalidates
/// state an in-flight query is reading — the old snapshot dies when its
/// last reader drops it (RCU by shared_ptr refcount).
///
/// Thread-safe after construction: every accessor is const and the
/// underlying QueryRelaxer is safe for concurrent queries.
class Snapshot {
 public:
  /// Runs the offline phase end-to-end: moves `dag` and `kb` in, builds a
  /// name index + mapper over the snapshot's own DAG, runs Algorithm 1
  /// (customizing the DAG with shortcut edges), and configures the relaxer.
  /// `corpus` may be null (the QR-no-corpus configuration) and is only read
  /// during the build. Fails when ingestion fails (e.g. a multi-rooted DAG).
  /// MEDRELAX_BLOCKING: the whole offline phase runs inline — seconds of
  /// CPU at scale. Never reachable from the event loop; rebuilds belong
  /// on a worker with the result Post()ed back (tools/medrelax_server.cc).
  [[nodiscard]] static Result<std::shared_ptr<Snapshot>> Build(
      ConceptDag dag, KnowledgeBase kb, const Corpus* corpus,
      const SnapshotOptions& options) MEDRELAX_BLOCKING;

  /// Boots a snapshot from a flat image medrelax_ingest wrote: the image
  /// is mmapped read-only, the DAG/KB/ingestion artifacts rehydrate from
  /// its sections, and the frequency table is served zero-copy out of the
  /// mapping — Algorithm 1 never reruns. The recomputed options
  /// fingerprint must match the one stored at ingest time
  /// (InvalidArgument otherwise — the format evolved under the knobs).
  /// MEDRELAX_BLOCKING: maps and validates the whole file; O(image)
  /// checksum + index rebuild, but no corpus pass and no propagation.
  [[nodiscard]] static Result<std::shared_ptr<Snapshot>> LoadFromImage(
      const std::string& path) MEDRELAX_BLOCKING;

  /// Freezes this snapshot into a flat image at `path`, to be served
  /// later via LoadFromImage. MEDRELAX_BLOCKING: serializes every table
  /// to disk (offline ingest tool only).
  [[nodiscard]] Status WriteImage(const std::string& path) const
      MEDRELAX_BLOCKING;

  /// The publish generation stamped by SnapshotRegistry::Publish;
  /// 0 until published. Result-cache keys include this, so entries of a
  /// replaced snapshot can never answer queries against the new one.
  [[nodiscard]] uint64_t generation() const { return generation_; }

  /// Fingerprint of the options the relaxer answers under (similarity +
  /// relaxation knobs). Two snapshots built with different knobs never
  /// share cached results even within one generation.
  [[nodiscard]] uint64_t options_fingerprint() const {
    return options_fingerprint_;
  }

  [[nodiscard]] const ConceptDag& dag() const { return dag_; }
  [[nodiscard]] const KnowledgeBase& kb() const { return kb_; }
  [[nodiscard]] const IngestionResult& ingestion() const { return ingestion_; }
  [[nodiscard]] const MappingFunction& mapper() const { return *mapper_; }
  [[nodiscard]] const QueryRelaxer& relaxer() const { return *relaxer_; }

  /// The options this snapshot was built (or ingested) under.
  [[nodiscard]] const SnapshotOptions& options() const { return options_; }

  /// Whether this snapshot ran the offline phase or mapped an image.
  [[nodiscard]] SnapshotSource source() const { return source_; }

  /// Wall-clock microseconds LoadFromImage spent mapping + rehydrating;
  /// 0 for built snapshots.
  [[nodiscard]] uint64_t load_micros() const { return load_micros_; }

  /// Tag type gating the public constructor to Build (make_shared needs a
  /// public constructor; the tag keeps outside callers on the factory).
  struct BuildTag {
    explicit BuildTag() = default;
  };
  Snapshot(BuildTag, ConceptDag dag, KnowledgeBase kb);
  ~Snapshot();

  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;

 private:
  friend class SnapshotRegistry;

  /// Declared first so it is destroyed LAST: when the snapshot was mapped
  /// from an image, ingestion_.frequencies borrows its normalized table
  /// straight from this mapping and must never outlive it.
  std::unique_ptr<flat::FlatImageView> image_;
  ConceptDag dag_;
  KnowledgeBase kb_;
  IngestionResult ingestion_;
  std::unique_ptr<NameIndex> index_;
  std::unique_ptr<MappingFunction> mapper_;
  std::unique_ptr<QueryRelaxer> relaxer_;
  SnapshotOptions options_;
  uint64_t options_fingerprint_ = 0;
  uint64_t generation_ = 0;
  SnapshotSource source_ = SnapshotSource::kBuilt;
  uint64_t load_micros_ = 0;
};

/// The RCU-style publication point: readers take the current snapshot with
/// one shared-lock shared_ptr copy; a writer atomically swaps in a
/// replacement. In-flight queries keep relaxing against the snapshot they
/// grabbed; new queries see the new one.
class SnapshotRegistry {
 public:
  SnapshotRegistry() = default;
  SnapshotRegistry(const SnapshotRegistry&) = delete;
  SnapshotRegistry& operator=(const SnapshotRegistry&) = delete;

  /// The currently published snapshot; nullptr before the first Publish.
  [[nodiscard]] std::shared_ptr<const Snapshot> Current() const
      MEDRELAX_EXCLUDES(mu_);

  /// Stamps `snapshot` with the next generation number and makes it the
  /// current snapshot. Returns the stamped generation (1, 2, ...). The
  /// previous snapshot stays alive until its last reader releases it.
  uint64_t Publish(std::shared_ptr<Snapshot> snapshot) MEDRELAX_EXCLUDES(mu_);

  /// Generation of the latest Publish; 0 when nothing is published yet.
  [[nodiscard]] uint64_t generation() const {
    return generations_.load(std::memory_order_acquire);
  }

 private:
  mutable SharedMutex mu_{"SnapshotRegistry::mu"};
  std::shared_ptr<const Snapshot> current_ MEDRELAX_GUARDED_BY(mu_);
  std::atomic<uint64_t> generations_{0};
};

}  // namespace medrelax

#endif  // MEDRELAX_SERVE_SNAPSHOT_H_
