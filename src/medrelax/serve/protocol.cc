#include "medrelax/serve/protocol.h"

#include <limits>

#include "medrelax/common/string_util.h"

namespace medrelax::serve {

namespace {

/// Pops the next whitespace-delimited token off `*rest`; empty when the
/// input is exhausted. Mirrors `std::istream >> token` so the rewired
/// transports tokenize exactly like the old istringstream path did.
std::string_view NextToken(std::string_view* rest) {
  size_t start = rest->find_first_not_of(" \t\r\n\v\f");
  if (start == std::string_view::npos) {
    *rest = {};
    return {};
  }
  size_t end = rest->find_first_of(" \t\r\n\v\f", start);
  if (end == std::string_view::npos) end = rest->size();
  std::string_view token = rest->substr(start, end - start);
  rest->remove_prefix(end);
  return token;
}

}  // namespace

Verb ParseVerb(std::string_view token) {
  if (token == "RELAX") return Verb::kRelax;
  if (token == "CONTEXTS") return Verb::kContexts;
  if (token == "GEN") return Verb::kGen;
  if (token == "RELOAD") return Verb::kReload;
  if (token == "STATS") return Verb::kStats;
  if (token == "QUIT") return Verb::kQuit;
  return Verb::kUnknown;
}

Result<uint64_t> ParseProtocolCount(std::string_view text,
                                    std::string_view what) {
  if (text.empty()) {
    return Status::InvalidArgument(
        StrFormat("%.*s= wants a decimal integer",
                  static_cast<int>(what.size()), what.data()));
  }
  uint64_t value = 0;
  constexpr uint64_t kMax = std::numeric_limits<uint64_t>::max();
  for (char c : text) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument(
          StrFormat("%.*s= wants a decimal integer, got '%.*s'",
                    static_cast<int>(what.size()), what.data(),
                    static_cast<int>(text.size()), text.data()));
    }
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (kMax - digit) / 10) {
      return Status::InvalidArgument(
          StrFormat("%.*s=%.*s does not fit in 64 bits",
                    static_cast<int>(what.size()), what.data(),
                    static_cast<int>(text.size()), text.data()));
    }
    value = value * 10 + digit;
  }
  return value;
}

Result<RelaxLine> ParseRelaxArgs(std::string_view args) {
  RelaxLine line;
  std::string_view rest = args;
  for (std::string_view token = NextToken(&rest); !token.empty();
       token = NextToken(&rest)) {
    if (line.term.empty() && token.rfind("k=", 0) == 0) {
      Result<uint64_t> k = ParseProtocolCount(token.substr(2), "k");
      if (!k.ok()) return k.status();
      if (*k == 0) {
        // The service coerces top_k == 0 to the snapshot default, so an
        // explicit k=0 would silently alias "default" — reject the typo
        // instead of answering something the client did not ask for.
        return Status::InvalidArgument(
            "k must be positive (omit k= for the snapshot default)");
      }
      line.top_k = *k;
      continue;
    }
    if (line.term.empty() && token.rfind("timeout_ms=", 0) == 0) {
      Result<uint64_t> ms =
          ParseProtocolCount(token.substr(11), "timeout_ms");
      if (!ms.ok()) return ms.status();
      if (*ms > kMaxTimeoutMs) {
        return Status::InvalidArgument(StrFormat(
            "timeout_ms must be at most %llu",
            static_cast<unsigned long long>(kMaxTimeoutMs)));
      }
      line.timeout_ms = *ms;
      continue;
    }
    if (line.term.empty() && token.rfind("ctx=", 0) == 0) {
      line.has_context = true;
      line.context_label = std::string(token.substr(4));
      continue;
    }
    if (!line.term.empty()) line.term += ' ';
    line.term += token;
  }
  if (line.term.empty()) {
    return Status::InvalidArgument("RELAX needs a term");
  }
  return line;
}

}  // namespace medrelax::serve
