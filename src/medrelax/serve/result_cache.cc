#include "medrelax/serve/result_cache.h"

#include <algorithm>
#include <bit>
#include <utility>

namespace medrelax {

namespace {

/// splitmix64 finalizer: cheap, well-mixed, stable across platforms.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t MixIn(uint64_t seed, uint64_t value) {
  return Mix64(seed ^ Mix64(value));
}

}  // namespace

uint64_t HashCacheKey(const CacheKey& key) {
  uint64_t h = Mix64(key.generation);
  h = MixIn(h, key.options_fingerprint);
  h = MixIn(h, (static_cast<uint64_t>(key.concept_id) << 32) |
                   static_cast<uint64_t>(key.context));
  h = MixIn(h, key.top_k);
  return h;
}

uint64_t FingerprintOptions(const RelaxationOptions& relaxation,
                            const SimilarityOptions& similarity) {
  uint64_t h = Mix64(0x6d656472656c6178ULL);  // "medrelax"
  h = MixIn(h, relaxation.radius);
  h = MixIn(h, relaxation.dynamic_radius ? 1 : 0);
  h = MixIn(h, relaxation.max_radius);
  h = MixIn(h, relaxation.top_k);
  h = MixIn(h, std::bit_cast<uint64_t>(similarity.generalization_weight));
  h = MixIn(h, std::bit_cast<uint64_t>(similarity.specialization_weight));
  h = MixIn(h, (similarity.use_path_penalty ? 1U : 0U) |
                   (similarity.use_context ? 2U : 0U) |
                   (similarity.memoize_geometry ? 4U : 0U));
  return h;
}

ResultCache::ResultCache(const ResultCacheOptions& options)
    : ResultCache(options, SizeShards(options.num_shards, options.capacity)) {}

ResultCache::ResultCache(const ResultCacheOptions& options, ShardSizing sizing)
    : shard_capacity_(sizing.per_shard_capacity),
      shard_mask_(sizing.shard_count - 1),
      policy_(options.policy),
      shards_(sizing.shard_count) {
  for (Shard& shard : shards_) {
    shard.sketch = AdmissionSketch(policy_.admission_sketch_slots);
  }
}

void ResultCache::BumpActivity(Shard& shard, Entry& entry) {
  entry.activity += shard.bump;
  // qute-style geometric decay without an O(n) decay pass: growing the
  // increment by 1/decay_factor makes every earlier contribution smaller
  // *relative to* new ones by exactly the decay factor per hit.
  shard.bump /= policy_.decay_factor;
  if (shard.bump > kActivityRescaleThreshold) {
    for (Entry& e : shard.lru) e.activity *= kActivityRescaleFactor;
    shard.bump *= kActivityRescaleFactor;
    rescales_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::shared_ptr<const RelaxationOutcome> ResultCache::Lookup(
    const CacheKey& key) {
  if (shard_capacity_ == 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  // Recency is maintained under both policies: it is the eviction order
  // for kLru and the tie-break (plus sweep determinism) for activity.
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  if (policy_.eviction == CachePolicy::Eviction::kDecayedActivity) {
    BumpActivity(shard, *it->second);
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->outcome;
}

void ResultCache::Insert(const CacheKey& key,
                         std::shared_ptr<const RelaxationOutcome> outcome) {
  if (shard_capacity_ == 0) return;
  Shard& shard = ShardFor(key);
  bool needs_sweep = false;
  {
    MutexLock lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->outcome = std::move(outcome);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      if (policy_.eviction == CachePolicy::Eviction::kDecayedActivity) {
        BumpActivity(shard, *it->second);
      }
      return;
    }
    const bool activity =
        policy_.eviction == CachePolicy::Eviction::kDecayedActivity;
    const bool full = shard.lru.size() >= shard_capacity_;
    if (activity && full && !shard.sketch.SeenOrRecord(HashCacheKey(key))) {
      // Full shard, first sighting: don't let a one-hit wonder push out
      // an established entry. The key is now in the sketch, so a second
      // sighting admits it.
      admission_rejects_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    shard.lru.push_front(Entry{key, std::move(outcome), shard.bump});
    shard.index.emplace(key, shard.lru.begin());
    // A doorkeeper admission means the key was sighted twice; credit the
    // second sighting as a touch so a fresh admit can compete with
    // once-hit residents in the sweep below instead of being its first
    // victim.
    if (activity && full) BumpActivity(shard, shard.lru.front());
    if (shard.lru.size() > shard_capacity_) {
      if (policy_.eviction == CachePolicy::Eviction::kLru) {
        shard.index.erase(shard.lru.back().key);
        shard.lru.pop_back();
        evictions_.fetch_add(1, std::memory_order_relaxed);
      } else {
        needs_sweep = true;
      }
    }
  }
  // The sweep re-acquires locks in the documented order (sweep_mu_ before
  // the shard mutex), so the insert's shard lock is released first.
  if (needs_sweep) SweepShard(shard);
}

void ResultCache::SweepShard(Shard& shard) {
  MutexLock sweep_lock(sweep_mu_);
  MutexLock lock(shard.mu);
  if (shard.lru.size() <= shard_capacity_) return;  // a sweep raced us
  // Evict at least the overflow, at most the configured bottom fraction.
  const size_t over = shard.lru.size() - shard_capacity_;
  const double fraction =
      std::clamp(policy_.sweep_fraction, 0.0, 1.0);
  const size_t target = std::max<size_t>(
      over, static_cast<size_t>(fraction *
                                static_cast<double>(shard.lru.size())));
  // Rank every entry by activity, least-recently-used first among equal
  // activities: walking the list back-to-front and stable-sorting keeps
  // the LRU order as the deterministic tie-break.
  std::vector<std::list<Entry>::iterator> ranked;
  ranked.reserve(shard.lru.size());
  for (auto it = shard.lru.end(); it != shard.lru.begin();) {
    ranked.push_back(--it);
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) {
                     return a->activity < b->activity;
                   });
  const size_t victims = std::min(target, ranked.size());
  for (size_t i = 0; i < victims; ++i) {
    shard.index.erase(ranked[i]->key);
    shard.lru.erase(ranked[i]);
  }
  evictions_.fetch_add(victims, std::memory_order_relaxed);
  activity_evictions_.fetch_add(victims, std::memory_order_relaxed);
  sweeps_completed_.fetch_add(1, std::memory_order_relaxed);
}

void ResultCache::Clear() {
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    shard.lru.clear();
    shard.index.clear();
    shard.bump = 1.0;
    shard.sketch.Clear();
  }
}

size_t ResultCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    total += shard.lru.size();
  }
  return total;
}

}  // namespace medrelax
