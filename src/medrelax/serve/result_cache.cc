#include "medrelax/serve/result_cache.h"

#include <algorithm>
#include <bit>
#include <utility>

namespace medrelax {

namespace {

/// splitmix64 finalizer: cheap, well-mixed, stable across platforms.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t MixIn(uint64_t seed, uint64_t value) {
  return Mix64(seed ^ Mix64(value));
}

}  // namespace

uint64_t HashCacheKey(const CacheKey& key) {
  uint64_t h = Mix64(key.generation);
  h = MixIn(h, key.options_fingerprint);
  h = MixIn(h, (static_cast<uint64_t>(key.concept_id) << 32) |
                   static_cast<uint64_t>(key.context));
  h = MixIn(h, key.top_k);
  return h;
}

uint64_t FingerprintOptions(const RelaxationOptions& relaxation,
                            const SimilarityOptions& similarity) {
  uint64_t h = Mix64(0x6d656472656c6178ULL);  // "medrelax"
  h = MixIn(h, relaxation.radius);
  h = MixIn(h, relaxation.dynamic_radius ? 1 : 0);
  h = MixIn(h, relaxation.max_radius);
  h = MixIn(h, relaxation.top_k);
  h = MixIn(h, std::bit_cast<uint64_t>(similarity.generalization_weight));
  h = MixIn(h, std::bit_cast<uint64_t>(similarity.specialization_weight));
  h = MixIn(h, (similarity.use_path_penalty ? 1U : 0U) |
                   (similarity.use_context ? 2U : 0U) |
                   (similarity.memoize_geometry ? 4U : 0U));
  return h;
}

ResultCache::ResultCache(const ResultCacheOptions& options)
    : shards_(std::bit_ceil(std::max<size_t>(options.num_shards, 1))) {
  shard_mask_ = shards_.size() - 1;
  // Distribute the budget; a nonzero total capacity keeps every shard
  // usable (at least one entry each).
  shard_capacity_ = options.capacity == 0
                        ? 0
                        : std::max<size_t>(
                              1, (options.capacity + shards_.size() - 1) /
                                     shards_.size());
}

std::shared_ptr<const RelaxationOutcome> ResultCache::Lookup(
    const CacheKey& key) {
  if (shard_capacity_ == 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->outcome;
}

void ResultCache::Insert(const CacheKey& key,
                         std::shared_ptr<const RelaxationOutcome> outcome) {
  if (shard_capacity_ == 0) return;
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->outcome = std::move(outcome);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{key, std::move(outcome)});
  shard.index.emplace(key, shard.lru.begin());
  if (shard.lru.size() > shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ResultCache::Clear() {
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    shard.lru.clear();
    shard.index.clear();
  }
}

size_t ResultCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    total += shard.lru.size();
  }
  return total;
}

}  // namespace medrelax
