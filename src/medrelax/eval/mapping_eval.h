#ifndef MEDRELAX_EVAL_MAPPING_EVAL_H_
#define MEDRELAX_EVAL_MAPPING_EVAL_H_

#include <string>
#include <vector>

#include "medrelax/datasets/query_generator.h"
#include "medrelax/eval/metrics.h"
#include "medrelax/matching/matcher.h"

namespace medrelax {

/// One row of Table 1: a mapping method with its accuracy.
struct MappingEvalRow {
  std::string method;
  PrF1 scores;
  /// Queries the method answered (returned any mapping).
  size_t answered = 0;
  size_t total = 0;
};

/// Scores a mapping method against the gold links (Table 1, Section 7.2):
/// a returned mapping equal to the gold concept is a true positive, a
/// different returned concept is a false positive (and the gold a false
/// negative), an abstention is a false negative.
MappingEvalRow EvaluateMappingMethod(const MappingFunction& mapper,
                                     const std::vector<MappingQuery>& queries);

}  // namespace medrelax

#endif  // MEDRELAX_EVAL_MAPPING_EVAL_H_
