#ifndef MEDRELAX_EVAL_METRICS_H_
#define MEDRELAX_EVAL_METRICS_H_

#include <cstddef>
#include <unordered_set>
#include <vector>

namespace medrelax {

/// Precision / recall / F1 triple (percent, matching the paper's tables).
struct PrF1 {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// Combines precision and recall (percent) into the harmonic-mean F1.
double F1(double precision_pct, double recall_pct);

/// Accumulates binary classification outcomes and reports P/R/F1 percent.
class PrCounter {
 public:
  void AddTruePositive(size_t n = 1) { tp_ += n; }
  void AddFalsePositive(size_t n = 1) { fp_ += n; }
  void AddFalseNegative(size_t n = 1) { fn_ += n; }

  [[nodiscard]] size_t tp() const { return tp_; }
  [[nodiscard]] size_t fp() const { return fp_; }
  [[nodiscard]] size_t fn() const { return fn_; }

  [[nodiscard]] PrF1 Compute() const;

 private:
  size_t tp_ = 0;
  size_t fp_ = 0;
  size_t fn_ = 0;
};

/// Precision@k for one ranked result list (percent): fraction of the first
/// min(k, |ranked|) results that are relevant. Returns 0 for empty input.
double PrecisionAtK(const std::vector<bool>& relevance_of_ranked, size_t k);

/// Recall@k for one ranked result list (percent): relevant results among
/// the top k over the total number of relevant items. Returns 0 when
/// total_relevant is 0.
double RecallAtK(const std::vector<bool>& relevance_of_ranked, size_t k,
                 size_t total_relevant);

/// Macro-average of per-query values.
double Mean(const std::vector<double>& values);

}  // namespace medrelax

#endif  // MEDRELAX_EVAL_METRICS_H_
