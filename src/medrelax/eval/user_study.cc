#include "medrelax/eval/user_study.h"

#include <algorithm>

#include "medrelax/common/random.h"

namespace medrelax {

namespace {

// One participant-question interaction following the Table 3 protocol.
int GradeOneQuestion(const GeneratedWorld& world, const GoldStandard& gold,
                     const ConversationalAnswerFn& system,
                     const NlQuestion& question,
                     const UserStudyOptions& options, Rng* rng) {
  // Orthogonal incidents first: they cap the grade regardless of QR.
  if (rng->Bernoulli(options.missing_answer_rate)) {
    return 1 + static_cast<int>(rng->UniformU64(2));  // 1 or 2
  }
  if (rng->Bernoulli(options.unexplained_low_rate)) {
    return rng->Bernoulli(0.5) ? 1 : 3;
  }

  const std::vector<std::string>& synonyms =
      world.eks.dag.synonyms(question.concept_id);
  std::string surface = question.term_surface;
  int failures = 0;
  for (int attempt = 0; attempt < 5; ++attempt) {
    std::vector<ConceptId> answer = system(question, surface);
    bool ok = false;
    for (ConceptId c : answer) {
      if (gold.IsRelevant(question.concept_id, question.context, c)) {
        ok = true;
        break;
      }
    }
    if (ok) break;
    ++failures;
    // Rephrase: a participant who knows another surface form switches to
    // it (canonical name first, then synonyms); otherwise they reword the
    // sentence but keep the same term and will keep failing.
    if (rng->Bernoulli(options.knows_alternative_surface)) {
      if (surface != world.eks.dag.name(question.concept_id)) {
        surface = world.eks.dag.name(question.concept_id);
      } else if (!synonyms.empty()) {
        surface = synonyms[rng->UniformU64(synonyms.size())];
      }
    }
  }
  int grade = std::max(1, 5 - failures);
  // Post-hoc annoyance incidents shave the grade of successful answers.
  if (grade >= 4 && rng->Bernoulli(options.flow_complaint_rate)) {
    grade -= 1 + static_cast<int>(rng->UniformU64(2));
  }
  if (grade == 5 && rng->Bernoulli(options.overwhelm_rate)) {
    grade = 3;
  }
  // Grader pickiness: a correct answer is rarely a full 5.
  if (rng->Bernoulli(options.picky_deduction_rate)) --grade;
  if (rng->Bernoulli(options.very_picky_deduction_rate)) --grade;
  return std::clamp(grade, 1, 5);
}

GradeDistribution Summarize(const std::vector<int>& grades) {
  GradeDistribution out;
  out.graded = grades.size();
  if (grades.empty()) return out;
  double total = 0.0;
  std::array<size_t, 5> counts = {0, 0, 0, 0, 0};
  for (int g : grades) {
    ++counts[static_cast<size_t>(g - 1)];
    total += g;
  }
  for (size_t i = 0; i < 5; ++i) {
    out.pct[i] = 100.0 * static_cast<double>(counts[i]) /
                 static_cast<double>(grades.size());
  }
  out.average = total / static_cast<double>(grades.size());
  return out;
}

}  // namespace

UserStudyResult RunUserStudy(const GeneratedWorld& world,
                             const GoldStandard& gold,
                             const ConversationalAnswerFn& system,
                             const UserStudyOptions& options) {
  Rng rng(options.seed);
  std::vector<int> t1_grades;
  std::vector<int> t2_grades;

  for (size_t p = 0; p < options.participants; ++p) {
    NlWorkloadOptions t1_opts;
    t1_opts.num_questions = options.t1_questions_per_participant;
    t1_opts.free_form = false;
    t1_opts.seed = options.seed * 1000 + p * 2;
    for (const NlQuestion& q : GenerateNlQuestions(world, t1_opts)) {
      t1_grades.push_back(
          GradeOneQuestion(world, gold, system, q, options, &rng));
    }

    NlWorkloadOptions t2_opts;
    t2_opts.num_questions = options.t2_questions_per_participant;
    t2_opts.free_form = true;
    // Free-form questions are phrased more colloquially than the
    // concept-anchored T1 ones.
    t2_opts.colloquial_synonym = 0.45;
    t2_opts.colloquial_typo = 0.30;
    t2_opts.seed = options.seed * 1000 + p * 2 + 1;
    for (const NlQuestion& q : GenerateNlQuestions(world, t2_opts)) {
      t2_grades.push_back(
          GradeOneQuestion(world, gold, system, q, options, &rng));
    }
  }

  UserStudyResult result;
  result.t1 = Summarize(t1_grades);
  result.t2 = Summarize(t2_grades);
  return result;
}

}  // namespace medrelax
