#include "medrelax/eval/mapping_eval.h"

namespace medrelax {

MappingEvalRow EvaluateMappingMethod(const MappingFunction& mapper,
                                     const std::vector<MappingQuery>& queries) {
  MappingEvalRow row;
  row.method = mapper.name();
  row.total = queries.size();
  PrCounter counter;
  for (const MappingQuery& q : queries) {
    std::optional<ConceptMatch> match = mapper.Map(q.surface);
    if (!match.has_value()) {
      counter.AddFalseNegative();
      continue;
    }
    ++row.answered;
    if (match->id == q.gold) {
      counter.AddTruePositive();
    } else {
      counter.AddFalsePositive();
      counter.AddFalseNegative();
    }
  }
  row.scores = counter.Compute();
  return row;
}

}  // namespace medrelax
