#include "medrelax/eval/relaxation_eval.h"

#include <algorithm>
#include <memory>

#include "medrelax/eval/metrics.h"
#include "medrelax/text/normalize.h"
#include "medrelax/text/tokenize.h"

namespace medrelax {

Table2Row EvaluateRanker(const std::string& method, const ConceptRanker& ranker,
                         const std::vector<RelaxationQuery>& queries,
                         const GoldStandard& gold,
                         const std::vector<ConceptId>& pool, size_t k) {
  Table2Row row;
  row.method = method;
  std::vector<double> precisions;
  std::vector<double> recalls;
  for (const RelaxationQuery& q : queries) {
    std::vector<ConceptId> ranked = ranker(q);
    std::vector<bool> relevance;
    relevance.reserve(ranked.size());
    for (ConceptId c : ranked) {
      relevance.push_back(gold.IsRelevant(q.concept_id, q.context, c));
    }
    size_t total_relevant = gold.CountRelevant(q.concept_id, q.context, pool);
    if (total_relevant == 0) continue;  // nothing to find for this query
    precisions.push_back(PrecisionAtK(relevance, k));
    recalls.push_back(RecallAtK(relevance, k, std::min(total_relevant, k)));
  }
  row.p_at_10 = Mean(precisions);
  row.r_at_10 = Mean(recalls);
  row.f1 = F1(row.p_at_10, row.r_at_10);
  return row;
}

ConceptRanker MakeRelaxerRanker(const QueryRelaxer* relaxer) {
  return [relaxer](const RelaxationQuery& q) {
    RelaxationOutcome outcome = relaxer->RelaxConcept(q.concept_id, q.context);
    std::vector<ConceptId> ranked;
    ranked.reserve(outcome.concepts.size());
    for (const ScoredConcept& sc : outcome.concepts) {
      ranked.push_back(sc.concept_id);
    }
    return ranked;
  };
}

ConceptRanker MakeEmbeddingRanker(const ConceptDag* dag, const SifModel* sif,
                                  std::vector<ConceptId> pool) {
  // Precompute candidate embeddings once; the returned lambda owns them.
  struct Prepared {
    std::vector<ConceptId> pool;
    std::vector<std::vector<double>> embeddings;
  };
  auto prepared = std::make_shared<Prepared>();
  prepared->pool = std::move(pool);
  prepared->embeddings.reserve(prepared->pool.size());
  for (ConceptId c : prepared->pool) {
    prepared->embeddings.push_back(
        sif->Embed(Tokenize(NormalizeTerm(dag->name(c)))));
  }
  return [dag, sif, prepared](const RelaxationQuery& q) {
    std::vector<double> query_vec =
        sif->Embed(Tokenize(NormalizeTerm(dag->name(q.concept_id))));
    std::vector<std::pair<double, ConceptId>> scored;
    scored.reserve(prepared->pool.size());
    for (size_t i = 0; i < prepared->pool.size(); ++i) {
      const std::vector<double>& cand = prepared->embeddings[i];
      double sim = 0.0;
      if (!query_vec.empty() && cand.size() == query_vec.size()) {
        sim = CosineSimilarity(query_vec.data(), cand.data(),
                               query_vec.size());
      }
      scored.emplace_back(sim, prepared->pool[i]);
    }
    std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    });
    std::vector<ConceptId> ranked;
    ranked.reserve(scored.size());
    for (const auto& [sim, c] : scored) {
      (void)sim;
      ranked.push_back(c);
    }
    return ranked;
  };
}

}  // namespace medrelax
