#include "medrelax/eval/gold_standard.h"

#include <limits>

namespace medrelax {

GoldStandard::GoldStandard(const GeneratedWorld* world,
                           const GoldStandardOptions& options)
    : world_(world), options_(options) {}

uint32_t GoldStandard::TrueDistance(ConceptId a, ConceptId b) const {
  if (a == b) return 0;
  uint64_t key = (static_cast<uint64_t>(a) << 32) | b;
  auto it = distance_cache_.find(key);
  if (it != distance_cache_.end()) return it->second;
  TaxonomicPath path = ShortestTaxonomicPath(world_->eks.dag, a, b);
  uint32_t d =
      path.found ? path.length() : std::numeric_limits<uint32_t>::max();
  distance_cache_.emplace(key, d);
  return d;
}

bool GoldStandard::IsRelevant(ConceptId query, ContextId ctx,
                              ConceptId candidate) const {
  if (options_.require_context_participation && ctx != kNoContext) {
    uint8_t mask = world_->participation[candidate];
    uint8_t need = 0;
    if (ctx == world_->ctx_indication) need = kParticipatesTreat;
    if (ctx == world_->ctx_risk) need = kParticipatesRisk;
    if (need != 0 && (mask & need) == 0) return false;
  }
  return TrueDistance(query, candidate) <= options_.max_distance;
}

size_t GoldStandard::CountRelevant(ConceptId query, ContextId ctx,
                                   const std::vector<ConceptId>& pool) const {
  size_t n = 0;
  for (ConceptId c : pool) {
    if (IsRelevant(query, ctx, c)) ++n;
  }
  return n;
}

}  // namespace medrelax
