#include "medrelax/eval/metrics.h"

#include <algorithm>

namespace medrelax {

double F1(double precision_pct, double recall_pct) {
  if (precision_pct + recall_pct <= 0.0) return 0.0;
  return 2.0 * precision_pct * recall_pct / (precision_pct + recall_pct);
}

PrF1 PrCounter::Compute() const {
  PrF1 out;
  if (tp_ + fp_ > 0) {
    out.precision =
        100.0 * static_cast<double>(tp_) / static_cast<double>(tp_ + fp_);
  }
  if (tp_ + fn_ > 0) {
    out.recall =
        100.0 * static_cast<double>(tp_) / static_cast<double>(tp_ + fn_);
  }
  out.f1 = F1(out.precision, out.recall);
  return out;
}

double PrecisionAtK(const std::vector<bool>& relevance_of_ranked, size_t k) {
  size_t take = std::min(k, relevance_of_ranked.size());
  if (take == 0) return 0.0;
  size_t hits = 0;
  for (size_t i = 0; i < take; ++i) {
    if (relevance_of_ranked[i]) ++hits;
  }
  return 100.0 * static_cast<double>(hits) / static_cast<double>(take);
}

double RecallAtK(const std::vector<bool>& relevance_of_ranked, size_t k,
                 size_t total_relevant) {
  if (total_relevant == 0) return 0.0;
  size_t take = std::min(k, relevance_of_ranked.size());
  size_t hits = 0;
  for (size_t i = 0; i < take; ++i) {
    if (relevance_of_ranked[i]) ++hits;
  }
  return 100.0 * static_cast<double>(hits) /
         static_cast<double>(total_relevant);
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double total = 0.0;
  for (double v : values) total += v;
  return total / static_cast<double>(values.size());
}

}  // namespace medrelax
