#ifndef MEDRELAX_EVAL_GOLD_STANDARD_H_
#define MEDRELAX_EVAL_GOLD_STANDARD_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "medrelax/datasets/kb_generator.h"
#include "medrelax/graph/paths.h"

namespace medrelax {

/// Options controlling what counts as a relevant relaxation.
struct GoldStandardOptions {
  /// Maximum true taxonomic distance (original hops, generalize-then-
  /// specialize) between query and candidate for the candidate to be
  /// semantically related. This operationalizes the SME judgment of
  /// Section 7.2 on the synthetic world.
  uint32_t max_distance = 3;
  /// Require the candidate to participate in the query context (the
  /// "hypothermia is not a treatment result for fever" rule).
  bool require_context_participation = true;
};

/// Ground-truth relevance judgments for relaxation results, derived from
/// the generator's true taxonomy and context-participation metadata —
/// the mechanical substitute for the paper's 20 SMEs.
class GoldStandard {
 public:
  /// Builds judgments over the candidate pool `flagged_concepts` (the
  /// concepts relaxation can return) for every (query, context) that will
  /// be evaluated. Distances use native subsumption edges only, so gold is
  /// independent of shortcut edges.
  GoldStandard(const GeneratedWorld* world,
               const GoldStandardOptions& options);

  /// True iff `candidate` is a relevant relaxation of `query` in `ctx`.
  /// `candidate == query` is relevant by definition (distance 0) when it
  /// participates in the context.
  [[nodiscard]]
  bool IsRelevant(ConceptId query, ContextId ctx, ConceptId candidate) const;

  /// Number of relevant candidates among `pool` for (query, ctx).
  size_t CountRelevant(ConceptId query, ContextId ctx,
                       const std::vector<ConceptId>& pool) const;

  [[nodiscard]] const GoldStandardOptions& options() const { return options_; }

 private:
  const GeneratedWorld* world_;
  GoldStandardOptions options_;
  /// Memoized true-distance queries: key = (query<<32)|candidate.
  mutable std::unordered_map<uint64_t, uint32_t> distance_cache_;

  [[nodiscard]] uint32_t TrueDistance(ConceptId a, ConceptId b) const;
};

}  // namespace medrelax

#endif  // MEDRELAX_EVAL_GOLD_STANDARD_H_
