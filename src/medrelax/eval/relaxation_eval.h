#ifndef MEDRELAX_EVAL_RELAXATION_EVAL_H_
#define MEDRELAX_EVAL_RELAXATION_EVAL_H_

#include <functional>
#include <string>
#include <vector>

#include "medrelax/datasets/query_generator.h"
#include "medrelax/embedding/sif.h"
#include "medrelax/eval/gold_standard.h"
#include "medrelax/relax/query_relaxer.h"

namespace medrelax {

/// A ranker maps a relaxation query to ranked external concepts (best
/// first). The six Table 2 methods are all expressed as rankers.
using ConceptRanker =
    std::function<std::vector<ConceptId>(const RelaxationQuery&)>;

/// One row of Table 2.
struct Table2Row {
  std::string method;
  double p_at_10 = 0.0;
  double r_at_10 = 0.0;
  double f1 = 0.0;
};

/// Scores a ranker: macro-averaged Precision@k and Recall@k against the
/// gold standard, with the recall denominator counted over `pool` (the
/// concepts any method could return — the flagged set).
Table2Row EvaluateRanker(const std::string& method, const ConceptRanker& ranker,
                         const std::vector<RelaxationQuery>& queries,
                         const GoldStandard& gold,
                         const std::vector<ConceptId>& pool, size_t k);

/// Wraps a QueryRelaxer (any SimilarityOptions configuration — QR,
/// QR-no-context, QR-no-corpus, IC) as a ranker. The relaxer's ingestion
/// and options determine the method's behavior.
ConceptRanker MakeRelaxerRanker(const QueryRelaxer* relaxer);

/// Wraps a SIF embedding model as a ranker over `pool`: candidates are
/// ordered by phrase-cosine between the query concept's name and the
/// candidate's name (the Embedding-trained / Embedding-pre-trained
/// baselines; context is ignored, which is exactly their weakness).
ConceptRanker MakeEmbeddingRanker(const ConceptDag* dag, const SifModel* sif,
                                  std::vector<ConceptId> pool);

}  // namespace medrelax

#endif  // MEDRELAX_EVAL_RELAXATION_EVAL_H_
