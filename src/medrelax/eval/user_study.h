#ifndef MEDRELAX_EVAL_USER_STUDY_H_
#define MEDRELAX_EVAL_USER_STUDY_H_

#include <array>
#include <functional>
#include <string>
#include <vector>

#include "medrelax/datasets/query_generator.h"
#include "medrelax/eval/gold_standard.h"

namespace medrelax {

/// The system under study: given a question and the surface form the
/// simulated participant used this attempt, return the external concepts
/// the conversational system surfaced (empty = "I don't understand").
using ConversationalAnswerFn = std::function<std::vector<ConceptId>(
    const NlQuestion& question, const std::string& surface_this_attempt)>;

/// Knobs of the simulated user study (Table 3 protocol, Section 7.2).
struct UserStudyOptions {
  size_t participants = 20;
  size_t t1_questions_per_participant = 20;
  size_t t2_questions_per_participant = 10;
  /// Probability that a participant knows an alternative surface form to
  /// rephrase with on a failed attempt (otherwise they repeat variants of
  /// the same wording and keep failing).
  double knows_alternative_surface = 0.40;
  /// Orthogonal noise, mirroring the incident classes the paper reports:
  /// answers genuinely missing from the KB (7 incidences), conversational-
  /// flow complaints (11), unexplained low grades (10), overwhelming
  /// result volume (6) — all independent of relaxation quality.
  double missing_answer_rate = 0.03;
  double flow_complaint_rate = 0.05;
  double unexplained_low_rate = 0.04;
  double overwhelm_rate = 0.03;
  /// SMEs rarely hand out a 5 even for a correct first-attempt answer
  /// (the paper's QR distribution peaks at 3-4): probability of deducting
  /// one extra point, and of a second extra point, from any grade.
  double picky_deduction_rate = 0.45;
  double very_picky_deduction_rate = 0.18;
  uint64_t seed = 31;
};

/// Grade histogram for one task: percentage of 1..5 grades plus average.
struct GradeDistribution {
  /// pct[0] = grade 1 (very dissatisfied) ... pct[4] = grade 5.
  std::array<double, 5> pct = {0, 0, 0, 0, 0};
  double average = 0.0;
  size_t graded = 0;
};

/// Table 3 for one system configuration (with or without QR).
struct UserStudyResult {
  GradeDistribution t1;
  GradeDistribution t2;
};

/// Runs the simulated protocol: each participant asks T1 questions (given
/// in-KB concepts) and T2 questions (free choice, may be out-of-KB); a
/// response containing a gold-relevant concept is accepted; otherwise the
/// participant rephrases up to 4 more times, deducting one point per
/// failed attempt (grade = max(1, 5 - failures)).
UserStudyResult RunUserStudy(const GeneratedWorld& world,
                             const GoldStandard& gold,
                             const ConversationalAnswerFn& system,
                             const UserStudyOptions& options);

}  // namespace medrelax

#endif  // MEDRELAX_EVAL_USER_STUDY_H_
