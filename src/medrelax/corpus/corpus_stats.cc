#include "medrelax/corpus/corpus_stats.h"

#include <cmath>

#include "medrelax/common/string_util.h"

namespace medrelax {

MentionStats::MentionStats(std::vector<std::string> phrases)
    : phrases_(std::move(phrases)) {
  totals_.assign(phrases_.size(), 0);
  doc_frequency_.assign(phrases_.size(), 0);
}

void MentionStats::Process(const Corpus& corpus, size_t num_contexts) {
  num_contexts_ = num_contexts;
  num_documents_ = corpus.size();
  per_context_.assign(phrases_.size(), std::vector<size_t>(num_contexts, 0));
  totals_.assign(phrases_.size(), 0);
  doc_frequency_.assign(phrases_.size(), 0);

  // Index phrases by first token for the sliding-window scan.
  struct PhraseRef {
    size_t phrase;
    std::vector<std::string> tokens;
  };
  std::unordered_map<std::string, std::vector<PhraseRef>> by_first_token;
  for (size_t p = 0; p < phrases_.size(); ++p) {
    std::vector<std::string> tokens = Split(phrases_[p], ' ');
    if (tokens.empty() || tokens[0].empty()) continue;
    by_first_token[tokens[0]].push_back({p, std::move(tokens)});
  }

  std::vector<bool> seen_in_doc(phrases_.size(), false);
  for (const Document& doc : corpus.documents()) {
    std::fill(seen_in_doc.begin(), seen_in_doc.end(), false);
    for (const DocumentSection& section : doc.sections) {
      const std::vector<std::string>& toks = section.tokens;
      for (size_t i = 0; i < toks.size(); ++i) {
        auto it = by_first_token.find(toks[i]);
        if (it == by_first_token.end()) continue;
        for (const PhraseRef& ref : it->second) {
          if (i + ref.tokens.size() > toks.size()) continue;
          bool match = true;
          for (size_t k = 1; k < ref.tokens.size(); ++k) {
            if (toks[i + k] != ref.tokens[k]) {
              match = false;
              break;
            }
          }
          if (!match) continue;
          ++totals_[ref.phrase];
          if (section.context != kNoContext &&
              section.context < num_contexts_) {
            ++per_context_[ref.phrase][section.context];
          }
          if (!seen_in_doc[ref.phrase]) {
            seen_in_doc[ref.phrase] = true;
            ++doc_frequency_[ref.phrase];
          }
        }
      }
    }
  }
}

size_t MentionStats::MentionCount(size_t p, ContextId ctx) const {
  if (p >= per_context_.size() || ctx >= num_contexts_) return 0;
  return per_context_[p][ctx];
}

size_t MentionStats::TotalMentions(size_t p) const {
  return p < totals_.size() ? totals_[p] : 0;
}

size_t MentionStats::DocumentFrequency(size_t p) const {
  return p < doc_frequency_.size() ? doc_frequency_[p] : 0;
}

double MentionStats::TfIdfWeight(size_t p, ContextId ctx) const {
  size_t df = DocumentFrequency(p);
  if (df == 0 || num_documents_ == 0) return 0.0;
  double idf = std::log(1.0 + static_cast<double>(num_documents_) /
                                  static_cast<double>(df));
  return static_cast<double>(MentionCount(p, ctx)) * idf;
}

double MentionStats::TfIdfWeightTotal(size_t p) const {
  size_t df = DocumentFrequency(p);
  if (df == 0 || num_documents_ == 0) return 0.0;
  double idf = std::log(1.0 + static_cast<double>(num_documents_) /
                                  static_cast<double>(df));
  return static_cast<double>(TotalMentions(p)) * idf;
}

}  // namespace medrelax
