#include "medrelax/corpus/document.h"

namespace medrelax {

size_t Corpus::TotalTokens() const {
  size_t total = 0;
  for (const Document& doc : documents_) {
    for (const DocumentSection& section : doc.sections) {
      total += section.tokens.size();
    }
  }
  return total;
}

}  // namespace medrelax
