#ifndef MEDRELAX_CORPUS_CORPUS_STATS_H_
#define MEDRELAX_CORPUS_CORPUS_STATS_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "medrelax/corpus/document.h"
#include "medrelax/ontology/context.h"

namespace medrelax {

/// Per-phrase, per-context mention statistics over a corpus.
///
/// This computes the |A| of Equation (2): the number of times a concept
/// name is *directly* mentioned in the corpus, split by the context of the
/// section the mention appears in, plus the document frequency used for
/// the tf-idf adjustment of Section 5.1 ("the concept frequency is further
/// adjusted based on the number of documents in which the concept name
/// appears").
class MentionStats {
 public:
  /// `phrases` are normalized multi-word names (e.g. "pain in throat");
  /// index in the vector is the phrase id used by all accessors.
  explicit MentionStats(std::vector<std::string> phrases);

  /// Scans the corpus, counting phrase occurrences per section context.
  /// `num_contexts` sizes the per-context tables; sections tagged with
  /// kNoContext contribute to every accessor's untyped totals only.
  /// Matching is token-based: a phrase matches wherever its token sequence
  /// occurs; nested phrases each count ("pain" also counts inside "pain in
  /// throat"), mirroring naive string counting over a corpus.
  void Process(const Corpus& corpus, size_t num_contexts);

  [[nodiscard]] size_t num_phrases() const { return phrases_.size(); }
  [[nodiscard]] size_t num_documents() const { return num_documents_; }

  /// Mentions of phrase `p` inside sections tagged with context `ctx`.
  [[nodiscard]] size_t MentionCount(size_t p, ContextId ctx) const;

  /// Mentions of phrase `p` across all sections (any or no context).
  [[nodiscard]] size_t TotalMentions(size_t p) const;

  /// Documents containing at least one mention of phrase `p`.
  [[nodiscard]] size_t DocumentFrequency(size_t p) const;

  /// tf-idf adjusted mention weight for (p, ctx):
  /// mention_count * log(1 + N / df). 0 when the phrase never occurs.
  [[nodiscard]] double TfIdfWeight(size_t p, ContextId ctx) const;

  /// tf-idf adjusted weight using total (context-agnostic) mentions.
  [[nodiscard]] double TfIdfWeightTotal(size_t p) const;

 private:
  std::vector<std::string> phrases_;
  size_t num_documents_ = 0;
  size_t num_contexts_ = 0;
  // [phrase][context] -> mentions ; parallel totals and document counts.
  std::vector<std::vector<size_t>> per_context_;
  std::vector<size_t> totals_;
  std::vector<size_t> doc_frequency_;
};

}  // namespace medrelax

#endif  // MEDRELAX_CORPUS_CORPUS_STATS_H_
