#ifndef MEDRELAX_CORPUS_DOCUMENT_H_
#define MEDRELAX_CORPUS_DOCUMENT_H_

#include <string>
#include <vector>

#include "medrelax/ontology/context.h"

namespace medrelax {

/// One contiguous piece of a document tagged with the context it evidences.
///
/// Medical KBs like *MED* are curated from structured monographs (DrugBank
/// entries, clinical summaries) whose sections carry semantics: a finding
/// mentioned under "Indications" supports the treat-context, the same
/// finding under "Adverse Reactions" supports the cause-context. Section
/// 5.1 of the paper differentiates concept frequency per context; tagging
/// corpus text at section granularity is what makes that countable.
struct DocumentSection {
  /// Context this section evidences, or kNoContext for untyped prose.
  ContextId context = kNoContext;
  /// Normalized word tokens of the section.
  std::vector<std::string> tokens;
};

/// One document of the corpus the KB is curated from.
struct Document {
  /// Stable identifier, e.g. the monograph's drug name.
  std::string name;
  std::vector<DocumentSection> sections;
};

/// The document corpus (Section 5.1, "Concept frequency").
class Corpus {
 public:
  Corpus() = default;

  Corpus(Corpus&&) = default;
  Corpus& operator=(Corpus&&) = default;
  Corpus(const Corpus&) = delete;
  Corpus& operator=(const Corpus&) = delete;

  /// Appends a document.
  void AddDocument(Document doc) { documents_.push_back(std::move(doc)); }

  /// Number of documents.
  [[nodiscard]] size_t size() const { return documents_.size(); }

  /// The i-th document. Precondition: i < size().
  [[nodiscard]]
  const Document& document(size_t i) const { return documents_[i]; }

  /// All documents.
  [[nodiscard]]
  const std::vector<Document>& documents() const { return documents_; }

  /// Total token count across all sections (corpus size metric).
  [[nodiscard]] size_t TotalTokens() const;

 private:
  std::vector<Document> documents_;
};

}  // namespace medrelax

#endif  // MEDRELAX_CORPUS_DOCUMENT_H_
