#ifndef MEDRELAX_IO_DAG_IO_H_
#define MEDRELAX_IO_DAG_IO_H_

#include <iosfwd>
#include <string>

#include "medrelax/common/result.h"
#include "medrelax/common/thread_annotations.h"
#include "medrelax/graph/concept_dag.h"

namespace medrelax {

/// Serializes a ConceptDag to a line-oriented, tab-separated text format:
///
///   # medrelax-dag v1
///   C<TAB><name>                         (concept; id = line order)
///   S<TAB><id><TAB><synonym>
///   E<TAB><child><TAB><parent><TAB><original-distance><TAB><is-shortcut>
///
/// Names may contain spaces but not tabs or newlines (normalization strips
/// both). The format round-trips shortcut edges, so a customized external
/// source can be ingested once and reloaded.
[[nodiscard]] Status SaveDag(const ConceptDag& dag, std::ostream& out)
    MEDRELAX_BLOCKING;

/// Convenience: SaveDag to a file path.
[[nodiscard]]
Status SaveDagToFile(const ConceptDag& dag, const std::string& path)
    MEDRELAX_BLOCKING;

/// Parses the format written by SaveDag. Fails with InvalidArgument on
/// malformed input (wrong header, bad ids, tab-embedded names).
[[nodiscard]] Result<ConceptDag> LoadDag(std::istream& in) MEDRELAX_BLOCKING;

/// Convenience: LoadDag from a file path.
[[nodiscard]] Result<ConceptDag> LoadDagFromFile(const std::string& path)
    MEDRELAX_BLOCKING;

}  // namespace medrelax

#endif  // MEDRELAX_IO_DAG_IO_H_
