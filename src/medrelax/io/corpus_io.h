#ifndef MEDRELAX_IO_CORPUS_IO_H_
#define MEDRELAX_IO_CORPUS_IO_H_

#include <iosfwd>
#include <string>

#include "medrelax/common/result.h"
#include "medrelax/common/thread_annotations.h"
#include "medrelax/corpus/document.h"

namespace medrelax {

/// Serializes a Corpus to a line-oriented, tab-separated text format:
///
///   # medrelax-corpus v1
///   D<TAB><document-name>
///   S<TAB><context-id-or-dash><TAB><space-joined tokens>
///
/// Sections belong to the most recent D record; an untyped section writes
/// "-" for the context. Tokens must not contain tabs/newlines (the
/// tokenizer guarantees that).
[[nodiscard]] Status SaveCorpus(const Corpus& corpus, std::ostream& out)
    MEDRELAX_BLOCKING;

/// Convenience: SaveCorpus to a file path.
[[nodiscard]]
Status SaveCorpusToFile(const Corpus& corpus, const std::string& path)
    MEDRELAX_BLOCKING;

/// Parses the format written by SaveCorpus.
[[nodiscard]] Result<Corpus> LoadCorpus(std::istream& in) MEDRELAX_BLOCKING;

/// Convenience: LoadCorpus from a file path.
[[nodiscard]] Result<Corpus> LoadCorpusFromFile(const std::string& path)
    MEDRELAX_BLOCKING;

}  // namespace medrelax

#endif  // MEDRELAX_IO_CORPUS_IO_H_
