#include "medrelax/io/ingestion_io.h"

#include <fstream>
#include <istream>
#include <ostream>

#include "medrelax/common/string_util.h"

namespace medrelax {

namespace {
constexpr const char kHeader[] = "# medrelax-ingestion v1";

Result<uint32_t> ParseU32(const std::string& s, size_t bound,
                          size_t line_number) {
  char* end = nullptr;
  unsigned long v = std::strtoul(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0' || v >= bound) {
    return Status::InvalidArgument(StrFormat(
        "LoadIngestion line %zu: bad id '%s'", line_number, s.c_str()));
  }
  return static_cast<uint32_t>(v);
}

}  // namespace

Status SaveIngestion(const IngestionResult& ingestion, std::ostream& out) {
  const FrequencyModel& freq = ingestion.frequencies;
  out << kHeader << "\n";
  out << "H\t" << freq.num_concepts() << "\t" << freq.num_contexts() << "\t"
      << StrFormat("%.17g", freq.smoothing()) << "\n";
  for (const Context& c : ingestion.contexts.contexts()) {
    out << "X\t" << c.domain << "\t" << c.relationship << "\t" << c.range
        << "\n";
  }
  for (const auto& [instance, concept_id] : ingestion.mappings) {
    out << "M\t" << instance << "\t" << concept_id << "\n";
  }
  for (const auto& [concept_id, contexts] : ingestion.concept_contexts) {
    for (ContextId ctx : contexts) {
      out << "C\t" << concept_id << "\t" << ctx << "\n";
    }
  }
  for (ConceptId id = 0; id < freq.num_concepts(); ++id) {
    for (ContextId ctx = 0; ctx < freq.num_contexts(); ++ctx) {
      double raw = freq.Raw(id, ctx);
      if (raw != 0.0) {
        out << "F\t" << id << "\t" << ctx << "\t"
            << StrFormat("%.17g", raw) << "\n";
      }
    }
  }
  out << "U\t" << ingestion.unmapped_instances << "\n";
  out << "E\t" << ingestion.shortcuts_added << "\n";
  if (!out.good()) {
    return Status::Internal("SaveIngestion: stream write failed");
  }
  return Status::OK();
}

Status SaveIngestionToFile(const IngestionResult& ingestion,
                           const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::InvalidArgument(
        StrFormat("cannot open '%s' for writing", path.c_str()));
  }
  return SaveIngestion(ingestion, out);
}

Result<IngestionResult> LoadIngestion(std::istream& in,
                                      const ConceptDag& dag) {
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    return Status::InvalidArgument("LoadIngestion: missing/unknown header");
  }
  IngestionResult result;
  size_t num_concepts = 0;
  size_t num_contexts = 0;
  double smoothing = 1.0;
  bool have_header_row = false;
  // Raw frequencies are buffered and replayed into a fresh model once the
  // header row fixed the dimensions.
  std::vector<std::tuple<ConceptId, ContextId, double>> raws;

  size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> fields = Split(line, '\t');
    if (fields[0] == "H" && fields.size() == 4) {
      num_concepts = std::strtoul(fields[1].c_str(), nullptr, 10);
      num_contexts = std::strtoul(fields[2].c_str(), nullptr, 10);
      smoothing = std::strtod(fields[3].c_str(), nullptr);
      if (num_concepts != dag.num_concepts()) {
        return Status::FailedPrecondition(StrFormat(
            "LoadIngestion: snapshot is for %zu concepts, DAG has %zu",
            num_concepts, dag.num_concepts()));
      }
      have_header_row = true;
    } else if (fields[0] == "X" && fields.size() == 4) {
      result.contexts.Intern(Context{fields[1], fields[2], fields[3]});
    } else if (fields[0] == "M" && fields.size() == 3) {
      if (!have_header_row) {
        return Status::InvalidArgument("LoadIngestion: M before H");
      }
      char* end = nullptr;
      InstanceId instance = static_cast<InstanceId>(
          std::strtoul(fields[1].c_str(), &end, 10));
      MEDRELAX_ASSIGN_OR_RETURN(
          ConceptId concept_id,
          ParseU32(fields[2], num_concepts, line_number));
      result.mappings.emplace_back(instance, concept_id);
    } else if (fields[0] == "C" && fields.size() == 3) {
      MEDRELAX_ASSIGN_OR_RETURN(
          ConceptId concept_id,
          ParseU32(fields[1], num_concepts, line_number));
      MEDRELAX_ASSIGN_OR_RETURN(
          ContextId ctx, ParseU32(fields[2], num_contexts, line_number));
      result.concept_contexts[concept_id].push_back(ctx);
    } else if (fields[0] == "F" && fields.size() == 4) {
      MEDRELAX_ASSIGN_OR_RETURN(
          ConceptId concept_id,
          ParseU32(fields[1], num_concepts, line_number));
      MEDRELAX_ASSIGN_OR_RETURN(
          ContextId ctx, ParseU32(fields[2], num_contexts, line_number));
      raws.emplace_back(concept_id, ctx,
                        std::strtod(fields[3].c_str(), nullptr));
    } else if (fields[0] == "U" && fields.size() == 2) {
      result.unmapped_instances = std::strtoul(fields[1].c_str(), nullptr, 10);
    } else if (fields[0] == "E" && fields.size() == 2) {
      result.shortcuts_added = std::strtoul(fields[1].c_str(), nullptr, 10);
    } else {
      return Status::InvalidArgument(StrFormat(
          "LoadIngestion line %zu: unrecognized record '%s'", line_number,
          fields[0].c_str()));
    }
  }
  if (!have_header_row) {
    return Status::InvalidArgument("LoadIngestion: missing H row");
  }
  if (result.contexts.size() != num_contexts) {
    return Status::InvalidArgument(StrFormat(
        "LoadIngestion: header says %zu contexts, found %zu", num_contexts,
        result.contexts.size()));
  }

  // Rebuild the derived state: flags, reverse index, normalized model.
  result.flagged.assign(dag.num_concepts(), false);
  for (const auto& [instance, concept_id] : result.mappings) {
    result.flagged[concept_id] = true;
    result.concept_instances[concept_id].push_back(instance);
  }
  FrequencyModel freq(num_concepts, num_contexts, smoothing);
  for (const auto& [concept_id, ctx, raw] : raws) {
    freq.SetRaw(concept_id, ctx, raw);
  }
  std::vector<ConceptId> roots = dag.Roots();
  if (roots.size() != 1) {
    return Status::FailedPrecondition(
        "LoadIngestion: DAG must have exactly one root");
  }
  freq.Normalize(roots.front());
  result.frequencies = std::move(freq);
  return result;
}

Result<IngestionResult> LoadIngestionFromFile(const std::string& path,
                                              const ConceptDag& dag) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound(
        StrFormat("cannot open '%s' for reading", path.c_str()));
  }
  return LoadIngestion(in, dag);
}

}  // namespace medrelax
