#include "medrelax/io/kb_io.h"

#include <fstream>
#include <istream>
#include <ostream>

#include "medrelax/common/string_util.h"

namespace medrelax {

namespace {
constexpr const char kHeader[] = "# medrelax-kb v1";

Status CheckName(const std::string& name) {
  if (name.find('\t') != std::string::npos ||
      name.find('\n') != std::string::npos) {
    return Status::InvalidArgument(
        StrFormat("name contains tab/newline: '%s'", name.c_str()));
  }
  return Status::OK();
}

Result<uint32_t> ParseU32(const std::string& s, size_t bound,
                          size_t line_number) {
  char* end = nullptr;
  unsigned long v = std::strtoul(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0' || v >= bound) {
    return Status::InvalidArgument(
        StrFormat("LoadKb line %zu: bad id '%s'", line_number, s.c_str()));
  }
  return static_cast<uint32_t>(v);
}

}  // namespace

Status SaveKb(const KnowledgeBase& kb, std::ostream& out) {
  out << kHeader << "\n";
  const DomainOntology& onto = kb.ontology;
  for (OntologyConceptId c = 0; c < onto.num_concepts(); ++c) {
    MEDRELAX_RETURN_NOT_OK(CheckName(onto.concept_name(c)));
    out << "OC\t" << onto.concept_name(c) << "\n";
  }
  for (const Relationship& r : onto.relationships()) {
    MEDRELAX_RETURN_NOT_OK(CheckName(r.name));
    out << "OR\t" << r.name << "\t" << r.domain << "\t" << r.range << "\n";
  }
  for (OntologyConceptId c = 0; c < onto.num_concepts(); ++c) {
    for (OntologyConceptId child : onto.SubConcepts(c)) {
      out << "OS\t" << child << "\t" << c << "\n";
    }
  }
  for (InstanceId i = 0; i < kb.instances.num_instances(); ++i) {
    const Instance& inst = kb.instances.instance(i);
    MEDRELAX_RETURN_NOT_OK(CheckName(inst.name));
    out << "I\t" << inst.concept_id << "\t" << inst.name << "\n";
  }
  for (const Triple& t : kb.triples.triples()) {
    out << "T\t" << t.subject << "\t" << t.relationship << "\t" << t.object
        << "\n";
  }
  if (!out.good()) return Status::Internal("SaveKb: stream write failed");
  return Status::OK();
}

Status SaveKbToFile(const KnowledgeBase& kb, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::InvalidArgument(
        StrFormat("cannot open '%s' for writing", path.c_str()));
  }
  return SaveKb(kb, out);
}

Result<KnowledgeBase> LoadKb(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    return Status::InvalidArgument("LoadKb: missing/unknown header");
  }
  KnowledgeBase kb;
  size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> fields = Split(line, '\t');
    if (fields[0] == "OC" && fields.size() == 2) {
      MEDRELAX_RETURN_NOT_OK(kb.ontology.AddConcept(fields[1]).status());
    } else if (fields[0] == "OR" && fields.size() == 4) {
      MEDRELAX_ASSIGN_OR_RETURN(
          uint32_t domain,
          ParseU32(fields[2], kb.ontology.num_concepts(), line_number));
      MEDRELAX_ASSIGN_OR_RETURN(
          uint32_t range,
          ParseU32(fields[3], kb.ontology.num_concepts(), line_number));
      MEDRELAX_RETURN_NOT_OK(
          kb.ontology.AddRelationship(fields[1], domain, range).status());
    } else if (fields[0] == "OS" && fields.size() == 3) {
      MEDRELAX_ASSIGN_OR_RETURN(
          uint32_t child,
          ParseU32(fields[1], kb.ontology.num_concepts(), line_number));
      MEDRELAX_ASSIGN_OR_RETURN(
          uint32_t parent,
          ParseU32(fields[2], kb.ontology.num_concepts(), line_number));
      MEDRELAX_RETURN_NOT_OK(kb.ontology.AddSubConcept(child, parent));
    } else if (fields[0] == "I" && fields.size() == 3) {
      MEDRELAX_ASSIGN_OR_RETURN(
          uint32_t concept_id,
          ParseU32(fields[1], kb.ontology.num_concepts(), line_number));
      MEDRELAX_RETURN_NOT_OK(
          kb.instances.AddInstance(fields[2], concept_id).status());
    } else if (fields[0] == "T" && fields.size() == 4) {
      MEDRELAX_ASSIGN_OR_RETURN(
          uint32_t subject,
          ParseU32(fields[1], kb.instances.num_instances(), line_number));
      MEDRELAX_ASSIGN_OR_RETURN(
          uint32_t rel,
          ParseU32(fields[2], kb.ontology.num_relationships(), line_number));
      MEDRELAX_ASSIGN_OR_RETURN(
          uint32_t object,
          ParseU32(fields[3], kb.instances.num_instances(), line_number));
      MEDRELAX_RETURN_NOT_OK(kb.triples.AddTriple(subject, rel, object));
    } else {
      return Status::InvalidArgument(StrFormat(
          "LoadKb line %zu: unrecognized record '%s'", line_number,
          fields[0].c_str()));
    }
  }
  return kb;
}

Result<KnowledgeBase> LoadKbFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound(
        StrFormat("cannot open '%s' for reading", path.c_str()));
  }
  return LoadKb(in);
}

}  // namespace medrelax
