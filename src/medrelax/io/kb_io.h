#ifndef MEDRELAX_IO_KB_IO_H_
#define MEDRELAX_IO_KB_IO_H_

#include <iosfwd>
#include <string>

#include "medrelax/common/result.h"
#include "medrelax/common/thread_annotations.h"
#include "medrelax/kb/kb_query.h"

namespace medrelax {

/// Serializes a KnowledgeBase (TBox + ABox) to a line-oriented,
/// tab-separated text format:
///
///   # medrelax-kb v1
///   OC<TAB><concept-name>                       (ontology concept)
///   OR<TAB><rel-name><TAB><domain-id><TAB><range-id>
///   OS<TAB><child-id><TAB><parent-id>           (TBox subsumption)
///   I<TAB><concept-id><TAB><instance-name>
///   T<TAB><subject><TAB><relationship><TAB><object>
[[nodiscard]] Status SaveKb(const KnowledgeBase& kb, std::ostream& out)
    MEDRELAX_BLOCKING;

/// Convenience: SaveKb to a file path.
[[nodiscard]]
Status SaveKbToFile(const KnowledgeBase& kb, const std::string& path)
    MEDRELAX_BLOCKING;

/// Parses the format written by SaveKb.
[[nodiscard]] Result<KnowledgeBase> LoadKb(std::istream& in) MEDRELAX_BLOCKING;

/// Convenience: LoadKb from a file path.
[[nodiscard]] Result<KnowledgeBase> LoadKbFromFile(const std::string& path)
    MEDRELAX_BLOCKING;

}  // namespace medrelax

#endif  // MEDRELAX_IO_KB_IO_H_
