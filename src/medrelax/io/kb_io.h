#ifndef MEDRELAX_IO_KB_IO_H_
#define MEDRELAX_IO_KB_IO_H_

#include <iosfwd>
#include <string>

#include "medrelax/common/result.h"
#include "medrelax/kb/kb_query.h"

namespace medrelax {

/// Serializes a KnowledgeBase (TBox + ABox) to a line-oriented,
/// tab-separated text format:
///
///   # medrelax-kb v1
///   OC<TAB><concept-name>                       (ontology concept)
///   OR<TAB><rel-name><TAB><domain-id><TAB><range-id>
///   OS<TAB><child-id><TAB><parent-id>           (TBox subsumption)
///   I<TAB><concept-id><TAB><instance-name>
///   T<TAB><subject><TAB><relationship><TAB><object>
[[nodiscard]] Status SaveKb(const KnowledgeBase& kb, std::ostream& out);

/// Convenience: SaveKb to a file path.
[[nodiscard]]
Status SaveKbToFile(const KnowledgeBase& kb, const std::string& path);

/// Parses the format written by SaveKb.
[[nodiscard]] Result<KnowledgeBase> LoadKb(std::istream& in);

/// Convenience: LoadKb from a file path.
[[nodiscard]] Result<KnowledgeBase> LoadKbFromFile(const std::string& path);

}  // namespace medrelax

#endif  // MEDRELAX_IO_KB_IO_H_
