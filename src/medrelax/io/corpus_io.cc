#include "medrelax/io/corpus_io.h"

#include <fstream>
#include <istream>
#include <ostream>

#include "medrelax/common/string_util.h"
#include "medrelax/text/tokenize.h"

namespace medrelax {

namespace {
constexpr const char kHeader[] = "# medrelax-corpus v1";
}  // namespace

Status SaveCorpus(const Corpus& corpus, std::ostream& out) {
  out << kHeader << "\n";
  for (const Document& doc : corpus.documents()) {
    if (doc.name.find('\t') != std::string::npos ||
        doc.name.find('\n') != std::string::npos) {
      return Status::InvalidArgument(
          StrFormat("document name contains tab/newline: '%s'",
                    doc.name.c_str()));
    }
    out << "D\t" << doc.name << "\n";
    for (const DocumentSection& section : doc.sections) {
      out << "S\t";
      if (section.context == kNoContext) {
        out << "-";
      } else {
        out << section.context;
      }
      out << "\t" << Join(section.tokens, " ") << "\n";
    }
  }
  if (!out.good()) return Status::Internal("SaveCorpus: stream write failed");
  return Status::OK();
}

Status SaveCorpusToFile(const Corpus& corpus, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::InvalidArgument(
        StrFormat("cannot open '%s' for writing", path.c_str()));
  }
  return SaveCorpus(corpus, out);
}

Result<Corpus> LoadCorpus(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    return Status::InvalidArgument("LoadCorpus: missing/unknown header");
  }
  Corpus corpus;
  Document current;
  bool have_document = false;
  size_t line_number = 1;
  auto flush = [&]() {
    if (have_document) corpus.AddDocument(std::move(current));
    current = Document();
  };
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> fields = Split(line, '\t');
    if (fields[0] == "D" && fields.size() == 2) {
      flush();
      have_document = true;
      current.name = fields[1];
    } else if (fields[0] == "S" && fields.size() == 3) {
      if (!have_document) {
        return Status::InvalidArgument(StrFormat(
            "LoadCorpus line %zu: section before any document",
            line_number));
      }
      DocumentSection section;
      if (fields[1] == "-") {
        section.context = kNoContext;
      } else {
        char* end = nullptr;
        section.context = static_cast<ContextId>(
            std::strtoul(fields[1].c_str(), &end, 10));
        if (end == fields[1].c_str() || *end != '\0') {
          return Status::InvalidArgument(StrFormat(
              "LoadCorpus line %zu: bad context '%s'", line_number,
              fields[1].c_str()));
        }
      }
      section.tokens = Tokenize(fields[2]);
      current.sections.push_back(std::move(section));
    } else {
      return Status::InvalidArgument(StrFormat(
          "LoadCorpus line %zu: unrecognized record '%s'", line_number,
          fields[0].c_str()));
    }
  }
  flush();
  return corpus;
}

Result<Corpus> LoadCorpusFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound(
        StrFormat("cannot open '%s' for reading", path.c_str()));
  }
  return LoadCorpus(in);
}

}  // namespace medrelax
