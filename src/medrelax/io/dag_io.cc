#include "medrelax/io/dag_io.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "medrelax/common/string_util.h"

namespace medrelax {

namespace {
constexpr const char kHeader[] = "# medrelax-dag v1";

Status CheckName(const std::string& name) {
  if (name.find('\t') != std::string::npos ||
      name.find('\n') != std::string::npos) {
    return Status::InvalidArgument(
        StrFormat("name contains tab/newline: '%s'", name.c_str()));
  }
  return Status::OK();
}
}  // namespace

Status SaveDag(const ConceptDag& dag, std::ostream& out) {
  out << kHeader << "\n";
  for (ConceptId id = 0; id < dag.num_concepts(); ++id) {
    MEDRELAX_RETURN_NOT_OK(CheckName(dag.name(id)));
    out << "C\t" << dag.name(id) << "\n";
  }
  for (ConceptId id = 0; id < dag.num_concepts(); ++id) {
    for (const std::string& syn : dag.synonyms(id)) {
      MEDRELAX_RETURN_NOT_OK(CheckName(syn));
      out << "S\t" << id << "\t" << syn << "\n";
    }
  }
  for (ConceptId id = 0; id < dag.num_concepts(); ++id) {
    for (const DagEdge& e : dag.parents(id)) {
      out << "E\t" << id << "\t" << e.target << "\t" << e.original_distance
          << "\t" << (e.is_shortcut ? 1 : 0) << "\n";
    }
  }
  if (!out.good()) return Status::Internal("SaveDag: stream write failed");
  return Status::OK();
}

Status SaveDagToFile(const ConceptDag& dag, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::InvalidArgument(
        StrFormat("cannot open '%s' for writing", path.c_str()));
  }
  return SaveDag(dag, out);
}

Result<ConceptDag> LoadDag(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    return Status::InvalidArgument("LoadDag: missing/unknown header");
  }
  ConceptDag dag;
  size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> fields = Split(line, '\t');
    auto parse_id = [&](const std::string& s, ConceptId* out_id) -> Status {
      char* end = nullptr;
      unsigned long v = std::strtoul(s.c_str(), &end, 10);
      if (end == s.c_str() || *end != '\0' || v >= dag.num_concepts()) {
        return Status::InvalidArgument(
            StrFormat("LoadDag line %zu: bad concept id '%s'", line_number,
                      s.c_str()));
      }
      *out_id = static_cast<ConceptId>(v);
      return Status::OK();
    };
    if (fields[0] == "C" && fields.size() == 2) {
      MEDRELAX_RETURN_NOT_OK(dag.AddConcept(fields[1]).status());
    } else if (fields[0] == "S" && fields.size() == 3) {
      ConceptId id;
      MEDRELAX_RETURN_NOT_OK(parse_id(fields[1], &id));
      MEDRELAX_RETURN_NOT_OK(dag.AddSynonym(id, fields[2]));
    } else if (fields[0] == "E" && fields.size() == 5) {
      ConceptId child, parent;
      MEDRELAX_RETURN_NOT_OK(parse_id(fields[1], &child));
      MEDRELAX_RETURN_NOT_OK(parse_id(fields[2], &parent));
      uint32_t distance =
          static_cast<uint32_t>(std::strtoul(fields[3].c_str(), nullptr, 10));
      bool shortcut = fields[4] == "1";
      if (shortcut) {
        MEDRELAX_RETURN_NOT_OK(dag.AddShortcut(child, parent, distance));
      } else {
        MEDRELAX_RETURN_NOT_OK(dag.AddSubsumption(child, parent));
      }
    } else {
      return Status::InvalidArgument(StrFormat(
          "LoadDag line %zu: unrecognized record '%s'", line_number,
          fields[0].c_str()));
    }
  }
  return dag;
}

Result<ConceptDag> LoadDagFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound(
        StrFormat("cannot open '%s' for reading", path.c_str()));
  }
  return LoadDag(in);
}

}  // namespace medrelax
