#ifndef MEDRELAX_IO_INGESTION_IO_H_
#define MEDRELAX_IO_INGESTION_IO_H_

#include <iosfwd>
#include <string>

#include "medrelax/common/result.h"
#include "medrelax/common/thread_annotations.h"
#include "medrelax/graph/concept_dag.h"
#include "medrelax/relax/ingestion.h"

namespace medrelax {

/// Serializes an IngestionResult — everything Algorithm 1 produces — to a
/// line-oriented, tab-separated text format, so the offline phase can run
/// once (in a batch job) and the online phase can load the artifacts in a
/// different process:
///
///   # medrelax-ingestion v1
///   H<TAB><num-concepts><TAB><num-contexts><TAB><smoothing>
///   X<TAB><domain><TAB><relationship><TAB><range>     (contexts, id order)
///   M<TAB><instance-id><TAB><concept-id>              (mappings; flags and
///                                                      the reverse index
///                                                      are rebuilt)
///   C<TAB><concept-id><TAB><context-id>               (concept contexts)
///   F<TAB><concept-id><TAB><context-id><TAB><raw>     (non-zero raw
///                                                      frequencies;
///                                                      normalization is
///                                                      re-run on load)
///   U<TAB><unmapped-count>
///   E<TAB><shortcuts-added>
///
/// The shortcut edges themselves live in the DAG (see dag_io.h): persist
/// the customized DAG alongside this file.
[[nodiscard]]
Status SaveIngestion(const IngestionResult& ingestion, std::ostream& out)
    MEDRELAX_BLOCKING;

/// Convenience: SaveIngestion to a file path.
[[nodiscard]] Status SaveIngestionToFile(const IngestionResult& ingestion,
                           const std::string& path) MEDRELAX_BLOCKING;

/// Parses the format written by SaveIngestion and re-derives the flagged
/// set, the concept->instances reverse index, and the normalized
/// frequencies. `dag` must be the (customized) external source the
/// ingestion ran against: ids are validated against it and the root is
/// used for re-normalization.
[[nodiscard]]
Result<IngestionResult> LoadIngestion(std::istream& in, const ConceptDag& dag)
    MEDRELAX_BLOCKING;

/// Convenience: LoadIngestion from a file path.
[[nodiscard]]
Result<IngestionResult> LoadIngestionFromFile(const std::string& path,
                                              const ConceptDag& dag)
    MEDRELAX_BLOCKING;

}  // namespace medrelax

#endif  // MEDRELAX_IO_INGESTION_IO_H_
