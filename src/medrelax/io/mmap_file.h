#ifndef MEDRELAX_IO_MMAP_FILE_H_
#define MEDRELAX_IO_MMAP_FILE_H_

#include <cstddef>
#include <span>
#include <string>

#include "medrelax/common/result.h"
#include "medrelax/common/thread_annotations.h"

namespace medrelax {

/// A read-only memory mapping of a whole regular file (MAP_SHARED, so two
/// processes mapping the same snapshot image share one page-cache copy).
/// The file descriptor is closed immediately after mmap — the mapping
/// keeps the pages alive on its own. Movable, not copyable: the
/// destructor unmaps.
class MappedFile {
 public:
  MappedFile() = default;

  /// Opens and maps `path`. Fails with NotFound when the file cannot be
  /// opened, InvalidArgument when it is not a regular file, Internal when
  /// the mmap itself fails. A zero-length file maps to an empty view.
  /// MEDRELAX_BLOCKING: open/fstat/mmap are filesystem syscalls.
  [[nodiscard]] static Result<MappedFile> Open(const std::string& path)
      MEDRELAX_BLOCKING;

  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  [[nodiscard]] const std::byte* data() const MEDRELAX_UNTRUSTED_BYTES {
    return data_;
  }
  [[nodiscard]] size_t size() const { return size_; }
  [[nodiscard]] std::span<const std::byte> bytes() const
      MEDRELAX_UNTRUSTED_BYTES {
    return {data_, size_};
  }

 private:
  MappedFile(const std::byte* data, size_t size) : data_(data), size_(size) {}

  const std::byte* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace medrelax

#endif  // MEDRELAX_IO_MMAP_FILE_H_
