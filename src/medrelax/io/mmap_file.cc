#include "medrelax/io/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <utility>

#include "medrelax/common/string_util.h"

namespace medrelax {

Result<MappedFile> MappedFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    // No strerror text: the message is part of the serving protocol's
    // typed `err` vocabulary and must not vary with locale/libc.
    return Status::NotFound(
        StrFormat("cannot open '%s' for mapping", path.c_str()));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::Internal(StrFormat("fstat('%s') failed", path.c_str()));
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::InvalidArgument(
        StrFormat("'%s' is not a regular file", path.c_str()));
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return MappedFile(nullptr, 0);
  }
  void* mapped = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping pins the pages; the fd is no longer needed
  if (mapped == MAP_FAILED) {
    return Status::Internal(StrFormat("mmap('%s') failed", path.c_str()));
  }
  return MappedFile(static_cast<const std::byte*>(mapped), size);
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<std::byte*>(data_), size_);  // NOLINT
  }
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) {
      ::munmap(const_cast<std::byte*>(data_), size_);  // NOLINT
    }
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

}  // namespace medrelax
