#include "medrelax/net/connection.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "medrelax/common/string_util.h"

namespace medrelax {
namespace net {

Connection::Connection(EventLoop& loop, int fd, uint64_t id,
                       const ConnectionLimits& limits, Handler* handler)
    : loop_(loop), fd_(fd), id_(id), limits_(limits), handler_(handler) {}

Connection::~Connection() {
  if (!closed_ && fd_ >= 0) {
    loop_.Remove(fd_);
    close(fd_);
  }
}

Status Connection::Start() {
  return loop_.Watch(fd_, EPOLLIN, [this](uint32_t events) { OnEvents(events); });
}

void Connection::OnEvents(uint32_t events) {
  if (closed_) return;
  if ((events & (EPOLLERR | EPOLLHUP)) != 0 && (events & EPOLLIN) == 0) {
    // Socket error with nothing left to read; flushing is hopeless too.
    DoClose(Status::Internal("socket error (EPOLLERR/EPOLLHUP)"));
    return;
  }
  if ((events & EPOLLOUT) != 0) {
    HandleWritable();
    if (closed_) return;
  }
  if ((events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0) HandleReadable();
}

void Connection::HandleReadable() {
  if (closed_ || paused_ || close_requested_) return;
  char buf[4096];
  for (;;) {
    const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      stats_.bytes_in += static_cast<uint64_t>(n);
      in_.append(buf, static_cast<size_t>(n));
      // Deliver as we go, so a handler Pause() (async request in
      // flight) takes effect mid-buffer and later commands wait.
      DeliverLines();
      if (closed_ || close_requested_) return;
      if (paused_) return;  // Pause() already dropped EPOLLIN
      if (in_.size() - in_pos_ > limits_.max_line_bytes &&
          !HasCompleteLine()) {
        // An unframed or hostile client: reject exactly like the
        // admission queue would, then hang up once the error flushed.
        const Status overflow = Status::ResourceExhausted(StrFormat(
            "line exceeds %zu bytes", limits_.max_line_bytes));
        ++stats_.oversize_rejects;
        in_.clear();
        in_pos_ = 0;
        Send("err " + overflow.ToString() + "\n");
        if (closed_) return;
        close_requested_ = true;
        close_reason_ = overflow;
        UpdateInterest();
        if (closed_) return;
        MaybeFinish();
        return;
      }
      continue;
    }
    if (n == 0) {
      peer_eof_ = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    DoClose(Status::Internal(StrFormat("recv: %s", std::strerror(errno))));
    return;
  }
  // EOF: drain buffered lines (including a final unterminated one — the
  // stdin transport's getline treats it as a line, so we do too).
  DeliverLines();
  if (closed_ || close_requested_) return;
  if (!paused_ && in_pos_ < in_.size()) {
    std::string line = in_.substr(in_pos_);
    in_.clear();
    in_pos_ = 0;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    ++stats_.lines_in;
    handler_->OnLine(*this, std::move(line));
    if (closed_) return;
  }
  UpdateInterest();
  if (closed_) return;
  MaybeFinish();
}

void Connection::DeliverLines() {
  while (!closed_ && !paused_ && !close_requested_) {
    const size_t nl = in_.find('\n', in_pos_);
    if (nl == std::string::npos) break;
    std::string line = in_.substr(in_pos_, nl - in_pos_);
    in_pos_ = nl + 1;
    if (in_pos_ == in_.size()) {
      in_.clear();
      in_pos_ = 0;
    } else if (in_pos_ > 4096 && in_pos_ * 2 >= in_.size()) {
      in_.erase(0, in_pos_);
      in_pos_ = 0;
    }
    if (!line.empty() && line.back() == '\r') line.pop_back();
    ++stats_.lines_in;
    handler_->OnLine(*this, std::move(line));
  }
}

bool Connection::HasCompleteLine() const {
  return in_.find('\n', in_pos_) != std::string::npos;
}

void Connection::Send(std::string_view data) {
  if (closed_) return;
  out_.append(data);
  TryFlush();
  if (closed_) return;
  if (out_.size() - out_pos_ > limits_.max_write_buffer_bytes) {
    DoClose(Status::ResourceExhausted(
        StrFormat("write buffer exceeds %zu bytes (reader too slow)",
                  limits_.max_write_buffer_bytes)));
  }
}

void Connection::TryFlush() {
  if (closed_) return;
  while (out_pos_ < out_.size()) {
    const ssize_t n = send(fd_, out_.data() + out_pos_,
                           out_.size() - out_pos_, MSG_NOSIGNAL);
    if (n > 0) {
      out_pos_ += static_cast<size_t>(n);
      stats_.bytes_out += static_cast<uint64_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!want_write_) {
        want_write_ = true;
        ++stats_.writes_deferred;
        UpdateInterest();
      }
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    // EPIPE/ECONNRESET: the peer vanished mid-response.
    DoClose(Status::Internal(StrFormat("send: %s", std::strerror(errno))));
    return;
  }
  out_.clear();
  out_pos_ = 0;
  if (want_write_) {
    want_write_ = false;
    UpdateInterest();
  }
}

void Connection::HandleWritable() {
  TryFlush();
  if (closed_) return;
  MaybeFinish();
}

void Connection::Pause() {
  if (closed_ || paused_) return;
  paused_ = true;
  UpdateInterest();
}

void Connection::Resume() {
  if (closed_ || !paused_) return;
  paused_ = false;
  DeliverLines();
  if (closed_) return;
  if (peer_eof_ && !paused_ && !close_requested_ && in_pos_ < in_.size()) {
    std::string line = in_.substr(in_pos_);
    in_.clear();
    in_pos_ = 0;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    ++stats_.lines_in;
    handler_->OnLine(*this, std::move(line));
    if (closed_) return;
  }
  UpdateInterest();
  if (closed_) return;
  MaybeFinish();
}

void Connection::CloseAfterFlush() {
  if (closed_ || close_requested_) return;
  close_requested_ = true;
  close_reason_ = Status::OK();
  UpdateInterest();
  if (closed_) return;
  TryFlush();
  if (closed_) return;
  MaybeFinish();
}

void Connection::Close(const Status& reason) { DoClose(reason); }

void Connection::UpdateInterest() {
  if (closed_) return;
  uint32_t events = 0;
  if (!paused_ && !peer_eof_ && !close_requested_) events |= EPOLLIN;
  if (want_write_) events |= EPOLLOUT;
  const Status status = loop_.Modify(fd_, events);
  if (!status.ok()) DoClose(status);
}

void Connection::MaybeFinish() {
  if (closed_ || paused_) return;
  if (out_pos_ < out_.size()) return;  // output still draining
  if (close_requested_) {
    DoClose(close_reason_);
    return;
  }
  if (peer_eof_ && in_pos_ >= in_.size()) DoClose(Status::OK());
}

void Connection::DoClose(const Status& reason) {
  if (closed_) return;
  closed_ = true;
  loop_.Remove(fd_);
  close(fd_);
  fd_ = -1;
  // Must stay last: the handler may schedule this object's destruction.
  handler_->OnClose(*this, reason);
}

}  // namespace net
}  // namespace medrelax
