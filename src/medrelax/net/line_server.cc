#include "medrelax/net/line_server.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

#include "medrelax/common/string_util.h"

namespace medrelax {
namespace net {

Status LineServer::Start(const LineServerOptions& options,
                         Callbacks callbacks) {
  options_ = options;
  callbacks_ = std::move(callbacks);
  Result<Acceptor> acceptor = Acceptor::ListenLoopback(options_.port);
  if (!acceptor.ok()) return acceptor.status();
  acceptor_.emplace(std::move(*acceptor));
  return loop_.Watch(acceptor_->fd(), EPOLLIN,
                     [this](uint32_t) { OnAcceptable(); });
}

Connection* LineServer::Find(uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end() || it->second->closed()) return nullptr;
  return it->second.get();
}

void LineServer::OnAcceptable() {
  // Level-triggered accept burst: drain the backlog so one wakeup does
  // not serve exactly one connection.
  for (;;) {
    const int fd = acceptor_->AcceptOne();
    if (fd < 0) return;
    if (connections_.size() >= options_.max_connections) {
      // Same vocabulary as the request queue: reject, don't buffer. One
      // best-effort error line, then hang up — a client that cannot even
      // get a socket slot must learn why.
      const Status reject = Status::ResourceExhausted(
          StrFormat("connection limit reached (%zu active)",
                    options_.max_connections));
      const std::string reply = "err " + reject.ToString() + "\n";
      (void)send(fd, reply.data(), reply.size(), MSG_NOSIGNAL);
      close(fd);
      ++stats_.rejected_capacity;
      if (callbacks_.on_reject) callbacks_.on_reject();
      continue;
    }
    const uint64_t id = next_id_++;
    auto conn = std::make_unique<Connection>(loop_, fd, id, options_.limits,
                                             static_cast<Handler*>(this));
    if (Status started = conn->Start(); !started.ok()) {
      continue;  // conn's destructor closes the fd
    }
    ++stats_.accepted;
    Connection& ref = *conn;
    connections_.emplace(id, std::move(conn));
    if (!options_.greeting.empty()) ref.Send(options_.greeting);
    if (callbacks_.on_accept && !ref.closed()) callbacks_.on_accept(ref);
  }
}

void LineServer::OnLine(Connection& conn, std::string line) {
  if (callbacks_.on_line) callbacks_.on_line(conn, std::move(line));
}

void LineServer::OnClose(Connection& conn, const Status& reason) {
  ++stats_.closed;
  if (callbacks_.on_disconnect) callbacks_.on_disconnect(conn, reason);
  // The close fired from inside the connection's own socket callback, so
  // destruction is deferred one loop turn. The LineServer must outlive
  // pending loop tasks (it does: the tool runs the loop to completion,
  // and tests drain with RunOnce before teardown).
  const uint64_t id = conn.id();
  loop_.Post([this, id] { connections_.erase(id); });
}

}  // namespace net
}  // namespace medrelax
