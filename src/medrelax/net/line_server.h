#ifndef MEDRELAX_NET_LINE_SERVER_H_
#define MEDRELAX_NET_LINE_SERVER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "medrelax/common/status.h"
#include "medrelax/net/acceptor.h"
#include "medrelax/net/connection.h"
#include "medrelax/net/event_loop.h"

namespace medrelax {
namespace net {

struct LineServerOptions {
  /// 0 = ephemeral; read the kernel's choice back from port().
  uint16_t port = 0;
  /// Admission cap on concurrent sessions: an accept beyond it is
  /// answered with one ResourceExhausted error line and closed,
  /// mirroring what a full request queue does to a Submit.
  size_t max_connections = 64;
  ConnectionLimits limits;
  /// Sent verbatim to every accepted connection (the serving banner, so
  /// a TCP transcript matches the stdin transcript line for line).
  std::string greeting;
};

/// Aggregate acceptance counters (loop-thread reads only).
struct LineServerStats {
  uint64_t accepted = 0;
  uint64_t rejected_capacity = 0;
  uint64_t closed = 0;
};

/// The transport tying Acceptor + Connections to one EventLoop: accepts
/// sessions, frames their lines, enforces the connection cap, and routes
/// per-line callbacks to the protocol layer (tools/medrelax_server.cc).
///
/// Loop-thread-only, like everything in net/ except EventLoop::Post.
/// Worker threads answer a connection by Post()ing a task that calls
/// Find(conn_id) — the id survives the connection, a dangling pointer
/// would not.
class LineServer : private Connection::Handler {
 public:
  using LineCallback = std::function<void(Connection&, std::string line)>;
  /// Observes an accepted session, after the greeting was queued.
  using AcceptCallback = std::function<void(Connection&)>;
  /// Observes teardown; the connection object is already closed (but
  /// still alive — destruction is deferred past the callback).
  using DisconnectCallback =
      std::function<void(const Connection&, const Status& reason)>;
  /// Observes an accept rejected at the connection cap.
  using RejectCallback = std::function<void()>;

  /// Protocol-layer hooks; only on_line is required. Every hook fires on
  /// the loop thread (the MEDRELAX_LOOP_THREAD_ONLY on the members is how
  /// the semantic pass knows a lambda bound here is loop-thread code).
  struct Callbacks {
    LineCallback on_line MEDRELAX_LOOP_THREAD_ONLY;
    AcceptCallback on_accept MEDRELAX_LOOP_THREAD_ONLY;
    DisconnectCallback on_disconnect MEDRELAX_LOOP_THREAD_ONLY;
    RejectCallback on_reject MEDRELAX_LOOP_THREAD_ONLY;
  };

  explicit LineServer(EventLoop& loop) : loop_(loop) {}
  ~LineServer() override = default;

  LineServer(const LineServer&) = delete;
  LineServer& operator=(const LineServer&) = delete;

  /// Binds 127.0.0.1:options.port and starts accepting.
  [[nodiscard]] Status Start(const LineServerOptions& options,
                             Callbacks callbacks) MEDRELAX_LOOP_THREAD_ONLY;

  /// The bound port (after Start).
  [[nodiscard]] uint16_t port() const {
    return acceptor_ ? acceptor_->port() : 0;
  }

  /// The live connection with this id, or nullptr if it is gone. Loop
  /// thread only; never cache the pointer across a Post boundary.
  [[nodiscard]] Connection* Find(uint64_t conn_id) MEDRELAX_LOOP_THREAD_ONLY;

  [[nodiscard]] size_t num_connections() const { return connections_.size(); }
  [[nodiscard]] const LineServerStats& stats() const { return stats_; }

 private:
  void OnAcceptable() MEDRELAX_LOOP_THREAD_ONLY;
  MEDRELAX_LOOP_THREAD_ONLY void OnLine(Connection& conn,
                                        std::string line) override;
  MEDRELAX_LOOP_THREAD_ONLY void OnClose(Connection& conn,
                                         const Status& reason) override;

  EventLoop& loop_;
  LineServerOptions options_;
  Callbacks callbacks_;
  std::optional<Acceptor> acceptor_;
  uint64_t next_id_ = 1;
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> connections_;
  LineServerStats stats_;
};

}  // namespace net
}  // namespace medrelax

#endif  // MEDRELAX_NET_LINE_SERVER_H_
