#ifndef MEDRELAX_NET_CONNECTION_H_
#define MEDRELAX_NET_CONNECTION_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "medrelax/common/status.h"
#include "medrelax/common/thread_annotations.h"
#include "medrelax/net/event_loop.h"

namespace medrelax {
namespace net {

/// Resource bounds of one connection. Both limits map to the service's
/// admission-control vocabulary: exceeding either rejects with
/// ResourceExhausted, mirroring what a full request queue does.
struct ConnectionLimits {
  /// A line (command) longer than this is rejected and the connection
  /// closed — an unframed client would otherwise grow the read buffer
  /// without bound.
  size_t max_line_bytes = 16 * 1024;
  /// Write-buffer high-water mark. A reader this far behind is cut off:
  /// the buffer is the transport's admission queue, and admission
  /// control means failing fast, not buffering forever.
  size_t max_write_buffer_bytes = 8 * 1024 * 1024;
};

/// Counters one connection accumulates over its lifetime; read them in
/// OnClose for the per-connection accounting line.
struct ConnectionStats {
  uint64_t lines_in = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  /// Sends that could not complete inline and armed EPOLLOUT.
  uint64_t writes_deferred = 0;
  /// Oversized-line rejections (at most one: the connection closes).
  uint64_t oversize_rejects = 0;
};

/// One accepted socket: reads into a buffer, reassembles '\n'-framed
/// lines (a trailing '\r' is stripped for telnet/netcat friendliness),
/// and hands complete lines to the handler in arrival order. Writes go
/// through an output buffer flushed opportunistically; when the socket
/// backs up, EPOLLOUT is armed and the remainder drains as the peer
/// catches up (and is de-armed once empty, so an idle connection costs
/// no wakeups).
///
/// Single-threaded: every method must be called on the EventLoop thread.
/// Cross-thread completions reach a connection by Post()ing to the loop.
///
/// Lifetime: after OnClose fires the connection delivers nothing more,
/// but the object stays valid until its owner destroys it — owners that
/// destroy from inside OnClose must defer with EventLoop::Post, because
/// the socket callback that triggered the close is still on the stack
/// (LineServer does exactly this).
class Connection {
 public:
  class Handler {
   public:
    virtual ~Handler() = default;
    /// One complete inbound line, framing stripped. Loop thread.
    MEDRELAX_LOOP_THREAD_ONLY virtual void OnLine(Connection& conn,
                                                  std::string line) = 0;
    /// The connection is torn down (fd closed, deregistered): orderly
    /// EOF/CloseAfterFlush is OK(); limit violations and socket errors
    /// carry the typed reason. Fires at most once, on the loop thread.
    MEDRELAX_LOOP_THREAD_ONLY virtual void OnClose(Connection& conn,
                                                   const Status& reason) = 0;
  };

  /// Takes ownership of `fd` (non-blocking). Call Start() to begin.
  Connection(EventLoop& loop, int fd, uint64_t id,
             const ConnectionLimits& limits, Handler* handler);
  /// Deregisters from the loop; connections live and die on the loop
  /// thread (LineServer erases them from its map inside OnEvents).
  ~Connection() MEDRELAX_LOOP_THREAD_ONLY;

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Registers with the loop for reads.
  [[nodiscard]] Status Start() MEDRELAX_LOOP_THREAD_ONLY;

  /// Buffers `data` and flushes as much as the socket accepts now; the
  /// rest drains via EPOLLOUT. No-op after close.
  void Send(std::string_view data) MEDRELAX_LOOP_THREAD_ONLY;

  /// Stops reading and line delivery; an async request is in flight and
  /// the reply must precede any later command (pipelined input stays
  /// buffered in the kernel — that is the backpressure).
  void Pause() MEDRELAX_LOOP_THREAD_ONLY;

  /// Resumes reading and delivers lines buffered while paused.
  void Resume() MEDRELAX_LOOP_THREAD_ONLY;

  /// Orderly shutdown: no further lines are delivered, buffered output
  /// drains, then the socket closes and OnClose(OK) fires.
  void CloseAfterFlush() MEDRELAX_LOOP_THREAD_ONLY;

  /// Immediate teardown with `reason` (also the path limits take).
  void Close(const Status& reason) MEDRELAX_LOOP_THREAD_ONLY;

  [[nodiscard]] uint64_t id() const { return id_; }
  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] bool paused() const { return paused_; }
  [[nodiscard]] bool closed() const { return closed_; }
  [[nodiscard]] size_t pending_out_bytes() const { return out_.size(); }
  [[nodiscard]] const ConnectionStats& stats() const { return stats_; }

 private:
  void OnEvents(uint32_t events) MEDRELAX_LOOP_THREAD_ONLY;
  /// Reads until EAGAIN/EOF; delivers lines; enforces max_line_bytes.
  void HandleReadable() MEDRELAX_LOOP_THREAD_ONLY;
  /// Flushes the write buffer; de-arms EPOLLOUT when drained.
  void HandleWritable() MEDRELAX_LOOP_THREAD_ONLY;
  /// Extracts and delivers complete lines until paused/closing/starved.
  void DeliverLines() MEDRELAX_LOOP_THREAD_ONLY;
  /// True if in_ holds at least one complete ('\n'-terminated) line.
  [[nodiscard]] bool HasCompleteLine() const;
  /// Flushes out_ to the socket; closes (slow-reader/error) on failure.
  void TryFlush() MEDRELAX_LOOP_THREAD_ONLY;
  /// Recomputes and applies the epoll interest mask.
  void UpdateInterest() MEDRELAX_LOOP_THREAD_ONLY;
  /// Closes once teardown conditions hold (flushed + nothing pending).
  void MaybeFinish() MEDRELAX_LOOP_THREAD_ONLY;
  void DoClose(const Status& reason) MEDRELAX_LOOP_THREAD_ONLY;

  EventLoop& loop_;
  int fd_;
  const uint64_t id_;
  const ConnectionLimits limits_;
  Handler* const handler_;

  // Unconsumed inbound bytes — attacker-controlled until framed.
  std::string in_ MEDRELAX_UNTRUSTED_BYTES;
  size_t in_pos_ = 0;     // consumed prefix of in_ (compacted lazily)
  std::string out_;       // unflushed outbound bytes
  size_t out_pos_ = 0;

  bool want_write_ = false;  // EPOLLOUT currently armed
  bool paused_ = false;
  bool peer_eof_ = false;    // read side saw EOF
  bool close_requested_ = false;
  bool closed_ = false;
  Status close_reason_;

  ConnectionStats stats_;
};

}  // namespace net
}  // namespace medrelax

#endif  // MEDRELAX_NET_CONNECTION_H_
