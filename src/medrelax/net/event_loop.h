#ifndef MEDRELAX_NET_EVENT_LOOP_H_
#define MEDRELAX_NET_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>

#include "medrelax/common/mutex.h"
#include "medrelax/common/status.h"

namespace medrelax {
namespace net {

/// Single-threaded epoll reactor: the one thread that calls Run() (or
/// RunOnce()) owns every registered fd and every Connection hanging off
/// it. All state except the cross-thread wakeup queue is therefore
/// unsynchronized by design — the loop thread is the synchronization
/// domain, exactly like the snapshot swap makes the serving bundle one.
///
/// The only way other threads talk to the loop is Post(): a task queue
/// guarded by an annotated Mutex plus an eventfd that wakes the epoll
/// wait. RelaxationService workers complete requests by Post()ing the
/// formatted reply back to the owning connection; they never touch a
/// socket (docs/SERVING.md, "TCP transport").
///
/// Registrations carry a generation token in the epoll user data, so an
/// event for an fd that was closed (and possibly reused) earlier in the
/// same epoll_wait batch is recognized as stale and dropped instead of
/// being delivered to the new owner.
class EventLoop {
 public:
  /// Invoked on the loop thread with the ready EPOLL* event mask.
  using IoHandler = std::function<void(uint32_t epoll_events)>;
  using Task = std::function<void()>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// False when epoll/eventfd creation failed at construction; every
  /// other method is a safe no-op (or error) in that state.
  [[nodiscard]] bool ok() const { return epoll_fd_ >= 0 && wake_fd_ >= 0; }

  /// Registers `fd` for the level-triggered `events` mask. Loop thread
  /// only (as are Modify and Remove); `handler` fires on the loop thread.
  [[nodiscard]] Status Watch(int fd, uint32_t events, IoHandler handler)
      MEDRELAX_LOOP_THREAD_ONLY MEDRELAX_POSTS_TO_LOOP;
  /// Changes the interest mask of a registered fd (0 parks it).
  [[nodiscard]] Status Modify(int fd, uint32_t events)
      MEDRELAX_LOOP_THREAD_ONLY;
  /// Deregisters `fd`; pending events already fetched for it are dropped.
  void Remove(int fd) MEDRELAX_LOOP_THREAD_ONLY;

  /// Enqueues `task` to run on the loop thread and wakes the loop.
  /// Thread-safe; the only EventLoop entry point that is.
  void Post(Task task) MEDRELAX_POSTS_TO_LOOP;

  /// Runs until Stop(). Blocks the calling thread, which becomes *the*
  /// loop thread.
  void Run() MEDRELAX_LOOP_THREAD_ONLY;

  /// One epoll_wait pass: dispatches ready events and drained Post()ed
  /// tasks, returns how many of either it handled. `timeout_ms` < 0
  /// blocks until something is ready; 0 polls. The unit-test driver.
  int RunOnce(int timeout_ms) MEDRELAX_LOOP_THREAD_ONLY;

  /// Makes Run() return soon. Thread-safe and idempotent.
  void Stop();

  [[nodiscard]] bool stopped() const {
    return stopped_.load(std::memory_order_acquire);
  }

 private:
  struct Registration {
    IoHandler handler;
    uint32_t token = 0;
  };

  /// Creates the epoll instance (-1 on failure); a plain function so the
  /// fd members can be const — immutable after construction, no guard.
  static int CreateEpollFd();
  /// Creates the wakeup eventfd and registers it with `epoll_fd`;
  /// returns -1 (closing the eventfd) when either step fails.
  static int CreateWakeFd(int epoll_fd);

  void DrainWakeupFd() MEDRELAX_LOOP_THREAD_ONLY;
  int RunTasks() MEDRELAX_LOOP_THREAD_ONLY;

  const int epoll_fd_;
  const int wake_fd_;
  uint32_t next_token_ MEDRELAX_LOOP_THREAD_ONLY = 1;
  std::atomic<bool> stopped_{false};
  // fd -> registration; loop-thread-only like everything but the queue.
  std::unordered_map<int, Registration> handlers_ MEDRELAX_LOOP_THREAD_ONLY;

  Mutex wakeup_mu_{"EventLoop::wakeup_mu"};
  std::deque<Task> tasks_ MEDRELAX_GUARDED_BY(wakeup_mu_);
};

}  // namespace net
}  // namespace medrelax

#endif  // MEDRELAX_NET_EVENT_LOOP_H_
