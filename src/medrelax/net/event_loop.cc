#include "medrelax/net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include "medrelax/common/string_util.h"

namespace medrelax {
namespace net {

namespace {

/// fd in the low half, registration token in the high half: the token
/// lets the dispatcher drop events for an fd that was Remove()d (and
/// possibly reused by a fresh accept) earlier in the same batch.
uint64_t PackEventData(int fd, uint32_t token) {
  return (static_cast<uint64_t>(token) << 32) |
         static_cast<uint32_t>(fd);
}

int UnpackFd(uint64_t data) {
  return static_cast<int>(data & 0xffffffffu);
}

uint32_t UnpackToken(uint64_t data) { return static_cast<uint32_t>(data >> 32); }

}  // namespace

int EventLoop::CreateEpollFd() { return epoll_create1(EPOLL_CLOEXEC); }

int EventLoop::CreateWakeFd(int epoll_fd) {
  if (epoll_fd < 0) return -1;
  const int wake_fd = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd < 0) return -1;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = PackEventData(wake_fd, 0);
  if (epoll_ctl(epoll_fd, EPOLL_CTL_ADD, wake_fd, &ev) != 0) {
    close(wake_fd);
    return -1;
  }
  return wake_fd;
}

EventLoop::EventLoop()
    : epoll_fd_(CreateEpollFd()), wake_fd_(CreateWakeFd(epoll_fd_)) {}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) close(wake_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
}

Status EventLoop::Watch(int fd, uint32_t events, IoHandler handler) {
  if (!ok()) return Status::FailedPrecondition("EventLoop failed to init");
  Registration reg{std::move(handler), next_token_++};
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = PackEventData(fd, reg.token);
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return Status::Internal(
        StrFormat("epoll_ctl(ADD, fd=%d): %s", fd, std::strerror(errno)));
  }
  handlers_[fd] = std::move(reg);
  return Status::OK();
}

Status EventLoop::Modify(int fd, uint32_t events) {
  auto it = handlers_.find(fd);
  if (it == handlers_.end()) {
    return Status::NotFound(StrFormat("fd %d is not registered", fd));
  }
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = PackEventData(fd, it->second.token);
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return Status::Internal(
        StrFormat("epoll_ctl(MOD, fd=%d): %s", fd, std::strerror(errno)));
  }
  return Status::OK();
}

void EventLoop::Remove(int fd) {
  if (handlers_.erase(fd) == 0) return;
  // The fd may already be closed (EPOLL_CTL_DEL then fails with EBADF);
  // either way it no longer delivers events, so errors are ignorable.
  epoll_event ev{};
  (void)epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, &ev);
}

void EventLoop::Post(Task task) {
  {
    MutexLock lock(wakeup_mu_);
    tasks_.push_back(std::move(task));
  }
  const uint64_t one = 1;
  // A full eventfd counter (EAGAIN) still wakes the loop; nothing lost.
  (void)write(wake_fd_, &one, sizeof(one));
}

void EventLoop::DrainWakeupFd() {
  uint64_t counter = 0;
  // Resets the eventfd counter; EAGAIN when another drain got it first.
  (void)read(wake_fd_, &counter, sizeof(counter));
}

int EventLoop::RunTasks() {
  std::deque<Task> ready;
  {
    MutexLock lock(wakeup_mu_);
    ready.swap(tasks_);
  }
  for (Task& task : ready) task();
  return static_cast<int>(ready.size());
}

int EventLoop::RunOnce(int timeout_ms) {
  if (!ok()) return -1;
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  int n = epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return 0;
    return -1;
  }
  int handled = 0;
  for (int i = 0; i < n; ++i) {
    const int fd = UnpackFd(events[i].data.u64);
    const uint32_t token = UnpackToken(events[i].data.u64);
    if (fd == wake_fd_) {
      DrainWakeupFd();
      handled += RunTasks();
      continue;
    }
    auto it = handlers_.find(fd);
    if (it == handlers_.end() || it->second.token != token) {
      continue;  // removed (or removed-and-reused) during this batch
    }
    // Copy: the handler may Remove() its own fd mid-call.
    IoHandler handler = it->second.handler;
    handler(events[i].events);
    ++handled;
  }
  // Post() can race the epoll_wait above; drain opportunistically so a
  // task enqueued while we dispatched io events does not wait a turn.
  handled += RunTasks();
  return handled;
}

void EventLoop::Run() {
  while (!stopped_.load(std::memory_order_acquire)) {
    if (RunOnce(-1) < 0) break;
  }
}

void EventLoop::Stop() {
  stopped_.store(true, std::memory_order_release);
  const uint64_t one = 1;
  (void)write(wake_fd_, &one, sizeof(one));  // wake the blocked epoll_wait
}

}  // namespace net
}  // namespace medrelax
