#ifndef MEDRELAX_NET_ACCEPTOR_H_
#define MEDRELAX_NET_ACCEPTOR_H_

#include <cstdint>

#include "medrelax/common/result.h"
#include "medrelax/common/thread_annotations.h"

namespace medrelax {
namespace net {

/// A non-blocking TCP listener bound to 127.0.0.1. Loopback-only on
/// purpose: medrelax_server has no authentication layer, so the TCP
/// transport serves co-located clients (tests, load drivers, sidecars)
/// and nothing routable (docs/SERVING.md).
class Acceptor {
 public:
  /// Binds and listens on 127.0.0.1:`port`; port 0 picks an ephemeral
  /// port (read it back from port()). SO_REUSEADDR is set so smoke-test
  /// restarts do not trip over TIME_WAIT.
  [[nodiscard]] static Result<Acceptor> ListenLoopback(uint16_t port,
                                                       int backlog = 128);

  ~Acceptor();
  Acceptor(Acceptor&& other) noexcept;
  Acceptor& operator=(Acceptor&& other) noexcept;
  Acceptor(const Acceptor&) = delete;
  Acceptor& operator=(const Acceptor&) = delete;

  /// The listening socket, non-blocking, for EventLoop registration.
  [[nodiscard]] int fd() const { return fd_; }
  /// The bound port (the kernel's pick when constructed with port 0).
  [[nodiscard]] uint16_t port() const { return port_; }

  /// Accepts one pending connection as a non-blocking CLOEXEC socket.
  /// Returns -1 when the accept queue is empty (or on a transient
  /// error); call again on the next EPOLLIN.
  [[nodiscard]] int AcceptOne() const MEDRELAX_LOOP_THREAD_ONLY;

 private:
  Acceptor(int fd, uint16_t port) : fd_(fd), port_(port) {}

  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace net
}  // namespace medrelax

#endif  // MEDRELAX_NET_ACCEPTOR_H_
