#include "medrelax/net/acceptor.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "medrelax/common/string_util.h"

namespace medrelax {
namespace net {

Result<Acceptor> Acceptor::ListenLoopback(uint16_t port, int backlog) {
  const int fd =
      socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::Internal(StrFormat("socket: %s", std::strerror(errno)));
  }
  const int enable = 1;
  (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status = Status::Internal(
        StrFormat("bind(127.0.0.1:%u): %s", port, std::strerror(errno)));
    close(fd);
    return status;
  }
  if (listen(fd, backlog) != 0) {
    const Status status =
        Status::Internal(StrFormat("listen: %s", std::strerror(errno)));
    close(fd);
    return status;
  }
  // Read the port back: with port 0 the kernel just picked one.
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const Status status =
        Status::Internal(StrFormat("getsockname: %s", std::strerror(errno)));
    close(fd);
    return status;
  }
  return Acceptor(fd, ntohs(bound.sin_port));
}

Acceptor::~Acceptor() {
  if (fd_ >= 0) close(fd_);
}

Acceptor::Acceptor(Acceptor&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      port_(std::exchange(other.port_, static_cast<uint16_t>(0))) {}

Acceptor& Acceptor::operator=(Acceptor&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    port_ = std::exchange(other.port_, static_cast<uint16_t>(0));
  }
  return *this;
}

int Acceptor::AcceptOne() const {
  const int conn =
      accept4(fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
  return conn >= 0 ? conn : -1;
}

}  // namespace net
}  // namespace medrelax
