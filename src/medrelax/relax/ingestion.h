#ifndef MEDRELAX_RELAX_INGESTION_H_
#define MEDRELAX_RELAX_INGESTION_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "medrelax/common/result.h"
#include "medrelax/corpus/document.h"
#include "medrelax/graph/concept_dag.h"
#include "medrelax/kb/kb_query.h"
#include "medrelax/matching/matcher.h"
#include "medrelax/ontology/context.h"
#include "medrelax/relax/frequency_model.h"

namespace medrelax {

/// Knobs of the offline external-knowledge-source ingestion (Algorithm 1).
struct IngestionOptions {
  /// tf-idf-adjust raw mention counts (Section 5.1). Off = raw counts.
  bool use_tfidf = true;
  /// Add application-specific shortcut edges (Section 5.1, "Sparsity of
  /// external knowledge source"); the ablation bench switches this off.
  bool add_shortcut_edges = true;
  /// Cap on the original distance a shortcut may replace; 0 = unlimited
  /// (the paper's formulation). Large flagged fan-outs can be bounded here.
  uint32_t max_shortcut_distance = 0;
  /// Laplace smoothing added before frequency normalization so unmentioned
  /// concepts keep a finite IC.
  double ic_smoothing = 1.0;
};

/// Everything Algorithm 1 returns: C, F, M, FEC — plus reverse indexes the
/// online phase needs.
struct IngestionResult {
  /// C: the possible contexts, interned.
  ContextRegistry contexts;
  /// F: per-(external concept, context) frequencies, normalized.
  FrequencyModel frequencies{0, 0};
  /// M: instance -> external concept mappings.
  std::vector<std::pair<InstanceId, ConceptId>> mappings;
  /// FEC: flag per external concept — true iff some KB instance maps to it.
  std::vector<bool> flagged;
  /// Reverse of M: external concept -> the instances mapped to it
  /// (Algorithm 2 line 7 materializes results through this).
  std::unordered_map<ConceptId, std::vector<InstanceId>> concept_instances;
  /// Contexts each external concept participates in (ranges of the mapped
  /// instances' ontology concepts).
  std::unordered_map<ConceptId, std::vector<ContextId>> concept_contexts;
  /// Number of KB instances the mapper could not map.
  size_t unmapped_instances = 0;
  /// Shortcut edges added to the external source.
  size_t shortcuts_added = 0;
};

/// Runs the offline ingestion (Algorithm 1) of the external knowledge
/// source `eks` against the KB:
///   1. context generation from the domain ontology (lines 1-4);
///   2. instance -> external-concept mappings via `mapper`, flagging
///      mapped concepts (lines 5-11);
///   3. per-context frequency propagation in children-first topological
///      order (Equation 2, lines 12-18), seeding |A| from `corpus` mention
///      statistics (tf-idf adjusted) when a corpus is given, or from the
///      intrinsic structure (|A| = 1 per concept — the corpus-free
///      QR-no-corpus configuration) otherwise;
///   4. shortcut-edge insertion for flagged concepts (lines 19-23),
///      mutating `eks`.
///
/// Fails if `eks` is not a single-rooted DAG.
[[nodiscard]]
Result<IngestionResult> RunIngestion(const KnowledgeBase& kb, ConceptDag* eks,
                                     const MappingFunction& mapper,
                                     const Corpus* corpus,
                                     const IngestionOptions& options);

}  // namespace medrelax

#endif  // MEDRELAX_RELAX_INGESTION_H_
