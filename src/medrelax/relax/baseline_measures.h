#ifndef MEDRELAX_RELAX_BASELINE_MEASURES_H_
#define MEDRELAX_RELAX_BASELINE_MEASURES_H_

#include <vector>

#include "medrelax/common/result.h"
#include "medrelax/graph/concept_dag.h"
#include "medrelax/ontology/context.h"
#include "medrelax/relax/frequency_model.h"

namespace medrelax {

/// The classic knowledge-based similarity measures the paper positions
/// itself against (Section 8, "Semantic similarity measures"):
///
///   * Wu & Palmer [42]:  2·depth(lcs) / (depth(a) + depth(b))
///   * shortest-path:     1 / (1 + dist(a, b))
///   * Resnik [34]:       IC(lcs)   (corpus IC; unnormalized)
///   * Lin [25]:          2·IC(lcs) / (IC(a) + IC(b)) — this is the
///                        paper's Equation 3, see SimilarityModel::SimIc.
///
/// These are reference baselines for tests and extra bench rows; the
/// paper's own method composes Lin-style IC with context conditioning and
/// the direction-weighted path penalty.
class BaselineMeasures {
 public:
  /// Borrows `dag` and `freq` (freq may be null if only the structural
  /// measures are used); both must outlive the object. Fails if the DAG
  /// is cyclic (depths are precomputed).
  static Result<BaselineMeasures> Create(const ConceptDag* dag,
                                         const FrequencyModel* freq);

  /// Wu-Palmer similarity in [0, 1]; 1 for identical concepts. Depth is
  /// counted from the root with the root at depth 1 (the customary +1 so
  /// the root is not infinitely dissimilar to everything).
  [[nodiscard]] double WuPalmer(ConceptId a, ConceptId b) const;

  /// 1 / (1 + taxonomic distance); 1 for identical concepts, 0 for
  /// disconnected pairs.
  [[nodiscard]] double PathSimilarity(ConceptId a, ConceptId b) const;

  /// Resnik similarity: the (context-conditioned) IC of the LCS.
  /// Requires a frequency model.
  [[nodiscard]] double Resnik(ConceptId a, ConceptId b, ContextId ctx) const;

 private:
  BaselineMeasures(const ConceptDag* dag, const FrequencyModel* freq,
                   std::vector<uint32_t> depths)
      : dag_(dag), freq_(freq), depths_(std::move(depths)) {}

  const ConceptDag* dag_;
  const FrequencyModel* freq_;
  std::vector<uint32_t> depths_;
};

}  // namespace medrelax

#endif  // MEDRELAX_RELAX_BASELINE_MEASURES_H_
