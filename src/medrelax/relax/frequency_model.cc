#include "medrelax/relax/frequency_model.h"

#include <cmath>

#include "medrelax/common/logging.h"
#include "medrelax/graph/topology.h"

namespace medrelax {

FrequencyModel::FrequencyModel(size_t num_concepts, size_t num_contexts,
                               double smoothing)
    : num_concepts_(num_concepts),
      num_contexts_(num_contexts),
      smoothing_(smoothing) {
  raw_.assign((num_contexts_ + 1) * num_concepts_, 0.0);
}

FrequencyModel FrequencyModel::FromNormalizedTable(
    size_t num_concepts, size_t num_contexts, double smoothing,
    std::span<const double> normalized) {
  MEDRELAX_CHECK(normalized.size() == (num_contexts + 1) * num_concepts)
      << "normalized table size mismatch";
  FrequencyModel model(num_concepts, num_contexts, smoothing);
  model.raw_.clear();
  model.raw_.shrink_to_fit();
  model.borrowed_ = normalized;
  model.normalized_ = true;
  return model;
}

size_t FrequencyModel::Index(ConceptId id, ContextId ctx) const {
  size_t row = (ctx == kNoContext) ? num_contexts_ : ctx;
  return row * num_concepts_ + id;
}

void FrequencyModel::SetRaw(ConceptId id, ContextId ctx, double raw) {
  MEDRELAX_CHECK(borrowed_.empty()) << "SetRaw on a borrowed-table model";
  MEDRELAX_CHECK(id < num_concepts_);
  MEDRELAX_CHECK(ctx < num_contexts_);
  raw_[Index(id, ctx)] = raw;
}

double FrequencyModel::Raw(ConceptId id, ContextId ctx) const {
  return raw_[Index(id, ctx)];
}

void FrequencyModel::Normalize(ConceptId root) {
  MEDRELAX_CHECK(borrowed_.empty()) << "Normalize on a borrowed-table model";
  MEDRELAX_CHECK(root < num_concepts_);
  // Aggregate row = sum over context rows.
  for (ConceptId id = 0; id < num_concepts_; ++id) {
    double total = 0.0;
    for (ContextId ctx = 0; ctx < num_contexts_; ++ctx) {
      total += raw_[Index(id, ctx)];
    }
    raw_[Index(id, kNoContext)] = total;
  }
  normalized_freq_.assign(raw_.size(), 0.0);
  for (size_t row = 0; row <= num_contexts_; ++row) {
    double root_value = raw_[row * num_concepts_ + root] + smoothing_;
    for (ConceptId id = 0; id < num_concepts_; ++id) {
      normalized_freq_[row * num_concepts_ + id] =
          (raw_[row * num_concepts_ + id] + smoothing_) / root_value;
    }
  }
  normalized_ = true;
}

double FrequencyModel::Frequency(ConceptId id, ContextId ctx) const {
  MEDRELAX_CHECK(normalized_) << "Normalize() must run before Frequency()";
  const double* table =
      borrowed_.empty() ? normalized_freq_.data() : borrowed_.data();
  return table[Index(id, ctx)];
}

double FrequencyModel::Ic(ConceptId id, ContextId ctx) const {
  double f = Frequency(id, ctx);
  if (f >= 1.0) return 0.0;
  return -std::log(f);
}

std::span<const double> FrequencyModel::NormalizedTable() const {
  MEDRELAX_CHECK(normalized_) << "NormalizedTable() on an unnormalized model";
  if (!borrowed_.empty()) return borrowed_;
  return {normalized_freq_.data(), normalized_freq_.size()};
}

Result<FrequencyModel> PropagateFrequencies(
    const ConceptDag& dag,
    const std::vector<std::vector<double>>& direct_per_context,
    ConceptId root, double smoothing) {
  MEDRELAX_ASSIGN_OR_RETURN(std::vector<ConceptId> topo,
                            TopologicalSortChildrenFirst(dag));
  const size_t num_contexts = direct_per_context.size();
  FrequencyModel freq(dag.num_concepts(), num_contexts, smoothing);
  std::vector<std::vector<double>> propagated(
      num_contexts, std::vector<double>(dag.num_concepts(), 0.0));
  for (ConceptId id : topo) {
    for (ContextId ctx = 0; ctx < num_contexts; ++ctx) {
      double f = id < direct_per_context[ctx].size()
                     ? direct_per_context[ctx][id]
                     : 0.0;
      for (ConceptId child : dag.NativeChildren(id)) {
        f += propagated[ctx][child];
      }
      propagated[ctx][id] = f;
      freq.SetRaw(id, ctx, f);
    }
  }
  freq.Normalize(root);
  return freq;
}

}  // namespace medrelax
