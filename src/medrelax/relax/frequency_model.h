#ifndef MEDRELAX_RELAX_FREQUENCY_MODEL_H_
#define MEDRELAX_RELAX_FREQUENCY_MODEL_H_

#include <cstddef>
#include <span>
#include <vector>

#include "medrelax/common/result.h"

#include "medrelax/graph/concept_dag.h"
#include "medrelax/ontology/context.h"

namespace medrelax {

/// Per-(external concept, context) propagated frequencies and the derived
/// information content (Equations 1 and 2).
///
/// Raw frequencies are the tf-idf-adjusted mention weights of Section 5.1
/// propagated bottom-up over the subsumption DAG; they are then normalized
/// to [0, 1] by the root's frequency so "the root concept has the highest
/// normalized frequency of 1" and IC(root) = 0. A Laplace-style smoothing
/// constant keeps never-mentioned concepts at a finite IC.
class FrequencyModel {
 public:
  /// `num_contexts` + 1 tables are kept: one per context plus the
  /// aggregated (context-agnostic) table used when no context is available
  /// at query time (Section 5.2, "Contextual information").
  FrequencyModel(size_t num_concepts, size_t num_contexts,
                 double smoothing = 1.0);

  /// Builds an already-normalized model whose table *borrows*
  /// `normalized` — the zero-copy path of the flat snapshot image
  /// (flat/snapshot_codec.h). `normalized` must hold the full
  /// (num_contexts + 1) x num_concepts row-major layout (aggregate row
  /// last) and must outlive the model; the mapped image owner guarantees
  /// this by member-declaration order. A borrowed model rejects SetRaw
  /// and Normalize.
  static FrequencyModel FromNormalizedTable(size_t num_concepts,
                                            size_t num_contexts,
                                            double smoothing,
                                            std::span<const double> normalized);

  [[nodiscard]] size_t num_concepts() const { return num_concepts_; }
  [[nodiscard]] size_t num_contexts() const { return num_contexts_; }
  [[nodiscard]] double smoothing() const { return smoothing_; }

  /// Sets the raw (propagated, un-normalized) frequency of (concept, ctx).
  void SetRaw(ConceptId id, ContextId ctx, double raw);

  /// Raw propagated frequency of (concept, ctx).
  [[nodiscard]] double Raw(ConceptId id, ContextId ctx) const;

  /// Finalizes the model: computes the aggregated table as the per-concept
  /// sum over contexts, then normalizes every table by its root value.
  /// `root` is the DAG root (normalized frequency exactly 1).
  void Normalize(ConceptId root);

  /// Normalized frequency in (0, 1]; ctx == kNoContext selects the
  /// aggregated table.
  [[nodiscard]] double Frequency(ConceptId id, ContextId ctx) const;

  /// Information content IC = -log(frequency) (Equation 1); 0 at the root,
  /// growing with specificity. ctx == kNoContext uses aggregation.
  [[nodiscard]] double Ic(ConceptId id, ContextId ctx) const;

  /// The full normalized table, (num_contexts + 1) x num_concepts
  /// row-major with the aggregate row last — what the flat image
  /// serializes. Requires a normalized model.
  [[nodiscard]] std::span<const double> NormalizedTable() const;

 private:
  [[nodiscard]] size_t Index(ConceptId id, ContextId ctx) const;

  size_t num_concepts_;
  size_t num_contexts_;
  double smoothing_;
  bool normalized_ = false;
  /// Layout: [ctx][concept] flattened; last "context" row is the aggregate.
  std::vector<double> raw_;
  std::vector<double> normalized_freq_;
  /// Non-empty iff the normalized table is borrowed from a mapped image
  /// rather than owned by normalized_freq_ (FromNormalizedTable). Never
  /// points into this object's own storage, so default copies/moves stay
  /// correct.
  std::span<const double> borrowed_;
};

/// Propagates direct per-context mention weights bottom-up over the DAG's
/// native subsumption edges (Equation 2: freq(A) = |A| + sum of direct
/// children's freq), then normalizes by the root (Section 5.1). The outer
/// index of `direct_per_context` is the context; each inner vector has one
/// entry per concept. Fails if the DAG is cyclic.
[[nodiscard]] Result<FrequencyModel> PropagateFrequencies(
    const ConceptDag& dag,
    const std::vector<std::vector<double>>& direct_per_context,
    ConceptId root, double smoothing = 1.0);

}  // namespace medrelax

#endif  // MEDRELAX_RELAX_FREQUENCY_MODEL_H_
