#include "medrelax/relax/feedback.h"

#include <algorithm>
#include <cmath>

namespace medrelax {

double FeedbackRelaxer::Factor(ConceptId concept_id, ContextId context) const {
  auto it = factors_.find(Key(concept_id, context));
  return it == factors_.end() ? 1.0 : it->second;
}

void FeedbackRelaxer::Apply(ConceptId candidate, ContextId context,
                            double factor) {
  auto bump = [&](ConceptId c, double f) {
    double& cell = factors_.emplace(Key(c, context), 1.0).first->second;
    cell = std::clamp(cell * f, options_.min_factor, options_.max_factor);
  };
  bump(candidate, factor);
  // Attenuated propagation to direct taxonomy neighbors (log-space share).
  double shared = std::exp(options_.neighborhood_share * std::log(factor));
  for (const DagEdge& e : dag_->parents(candidate)) {
    if (!e.is_shortcut) bump(e.target, shared);
  }
  for (const DagEdge& e : dag_->children(candidate)) {
    if (!e.is_shortcut) bump(e.target, shared);
  }
}

void FeedbackRelaxer::Accept(ConceptId candidate, ContextId context) {
  Apply(candidate, context, options_.accept_boost);
}

void FeedbackRelaxer::Reject(ConceptId candidate, ContextId context) {
  Apply(candidate, context, options_.reject_penalty);
}

RelaxationOutcome FeedbackRelaxer::RelaxConcept(ConceptId query,
                                                ContextId context) const {
  const size_t k = base_->options().top_k;
  RelaxationOutcome outcome = base_->RelaxConceptWithK(
      query, context, k * std::max<size_t>(1, options_.overfetch));
  for (ScoredConcept& sc : outcome.concepts) {
    sc.similarity *= Factor(sc.concept_id, context);
  }
  std::sort(outcome.concepts.begin(), outcome.concepts.end(),
            [](const ScoredConcept& a, const ScoredConcept& b) {
              if (a.similarity != b.similarity) {
                return a.similarity > b.similarity;
              }
              return a.concept_id < b.concept_id;
            });
  // Truncate back to exactly the base k, like Algorithm 2 does: the last
  // concept's contribution is cut at the k boundary.
  outcome.instances.clear();
  std::vector<ScoredConcept> kept;
  for (ScoredConcept& sc : outcome.concepts) {
    if (outcome.instances.size() >= k) break;
    for (InstanceId i : sc.instances) {
      if (outcome.instances.size() >= k) break;
      outcome.instances.push_back(i);
    }
    kept.push_back(std::move(sc));
  }
  outcome.concepts = std::move(kept);
  return outcome;
}

}  // namespace medrelax
