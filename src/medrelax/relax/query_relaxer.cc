#include "medrelax/relax/query_relaxer.h"

#include <algorithm>

#include "medrelax/common/string_util.h"
#include "medrelax/graph/traversal.h"

namespace medrelax {

QueryRelaxer::QueryRelaxer(const ConceptDag* eks,
                           const IngestionResult* ingestion,
                           const MappingFunction* mapper,
                           const SimilarityOptions& similarity_options,
                           const RelaxationOptions& relaxation_options)
    : eks_(eks),
      ingestion_(ingestion),
      mapper_(mapper),
      similarity_(eks, &ingestion->frequencies, similarity_options),
      relaxation_options_(relaxation_options) {}

Result<RelaxationOutcome> QueryRelaxer::Relax(std::string_view term,
                                              ContextId context) const {
  // Line 1: A <- mapping(q, EKS).
  std::optional<ConceptMatch> match = mapper_->Map(term);
  if (!match.has_value()) {
    return Status::NotFound(
        StrFormat("query term '%.*s' has no corresponding external concept",
                  static_cast<int>(term.size()), term.data()));
  }
  return RelaxConcept(match->id, context);
}

RelaxationOutcome QueryRelaxer::RelaxConcept(ConceptId query,
                                             ContextId context) const {
  return RelaxConceptWithK(query, context, relaxation_options_.top_k);
}

RelaxationOutcome QueryRelaxer::RelaxConceptWithK(ConceptId query,
                                                  ContextId context,
                                                  size_t k) const {
  RelaxationOutcome outcome;
  outcome.query_concept = query;

  const std::vector<bool>& flagged = ingestion_->flagged;

  // Line 2: candidates = flagged concepts within radius r, growing r when
  // dynamic sizing is on and the candidate pool cannot cover k.
  uint32_t radius = relaxation_options_.radius;
  std::vector<ConceptId> candidates;
  for (;;) {
    candidates.clear();
    if (query < flagged.size() && flagged[query]) {
      candidates.push_back(query);  // the term itself, when in the KB
    }
    for (const Neighbor& n : NeighborsWithinRadius(*eks_, query, radius)) {
      if (n.id < flagged.size() && flagged[n.id]) candidates.push_back(n.id);
    }
    size_t covered_instances = 0;
    for (ConceptId b : candidates) {
      auto it = ingestion_->concept_instances.find(b);
      if (it != ingestion_->concept_instances.end()) {
        covered_instances += it->second.size();
      }
    }
    if (!relaxation_options_.dynamic_radius || covered_instances >= k ||
        radius >= relaxation_options_.max_radius) {
      break;
    }
    ++radius;
  }
  outcome.effective_radius = radius;

  // Line 3: sort candidates by sim(A, B) descending; deterministic
  // tie-break on concept id.
  std::vector<ScoredConcept> scored;
  scored.reserve(candidates.size());
  for (ConceptId b : candidates) {
    ScoredConcept sc;
    sc.concept_id = b;
    sc.similarity = similarity_.Similarity(query, b, context);
    auto it = ingestion_->concept_instances.find(b);
    if (it != ingestion_->concept_instances.end()) sc.instances = it->second;
    scored.push_back(std::move(sc));
  }
  std::sort(scored.begin(), scored.end(),
            [](const ScoredConcept& a, const ScoredConcept& b) {
              if (a.similarity != b.similarity) {
                return a.similarity > b.similarity;
              }
              return a.concept_id < b.concept_id;
            });

  // Lines 4-8: pop candidates until k instances are gathered.
  for (ScoredConcept& sc : scored) {
    if (outcome.instances.size() >= k) break;
    for (InstanceId i : sc.instances) outcome.instances.push_back(i);
    outcome.concepts.push_back(std::move(sc));
  }
  return outcome;
}

size_t QueryRelaxer::PrecomputeSimilarities() const {
  if (!similarity_.options().memoize_geometry) return 0;
  const std::vector<bool>& flagged = ingestion_->flagged;
  for (ConceptId query = 0; query < flagged.size(); ++query) {
    if (!flagged[query]) continue;
    for (const Neighbor& n : NeighborsWithinRadius(
             *eks_, query, relaxation_options_.radius)) {
      if (n.id < flagged.size() && flagged[n.id]) {
        // Called for the memoization side effect; the geometry itself is
        // recomputed on demand by Similarity().
        (void)similarity_.Geometry(query, n.id);
      }
    }
  }
  return similarity_.cached_pairs();
}

}  // namespace medrelax
