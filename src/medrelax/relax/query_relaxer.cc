#include "medrelax/relax/query_relaxer.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "medrelax/common/string_util.h"
#include "medrelax/graph/traversal.h"

namespace medrelax {

namespace {

uint64_t ElapsedNs(std::chrono::steady_clock::time_point from,
                   std::chrono::steady_clock::time_point to) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from).count());
}

}  // namespace

QueryRelaxer::QueryRelaxer(const ConceptDag* eks,
                           const IngestionResult* ingestion,
                           const MappingFunction* mapper,
                           const SimilarityOptions& similarity_options,
                           const RelaxationOptions& relaxation_options)
    : eks_(eks),
      ingestion_(ingestion),
      mapper_(mapper),
      similarity_(eks, &ingestion->frequencies, similarity_options),
      relaxation_options_(relaxation_options) {}

Result<RelaxationOutcome> QueryRelaxer::Relax(std::string_view term,
                                              ContextId context) const {
  // Line 1: A <- mapping(q, EKS).
  std::optional<ConceptMatch> match = mapper_->Map(term);
  if (!match.has_value()) {
    return Status::NotFound(
        StrFormat("query term '%.*s' has no corresponding external concept",
                  static_cast<int>(term.size()), term.data()));
  }
  return RelaxConcept(match->id, context);
}

RelaxationOutcome QueryRelaxer::RelaxConcept(ConceptId query,
                                             ContextId context) const {
  return RelaxConceptWithK(query, context, relaxation_options_.top_k);
}

RelaxationOutcome QueryRelaxer::RelaxConceptWithK(ConceptId query,
                                                  ContextId context,
                                                  size_t k) const {
  GeometryEngine engine(eks_);
  return RelaxWithEngine(query, context, k, engine);
}

RelaxationOutcome QueryRelaxer::RelaxWithEngine(ConceptId query,
                                                ContextId context, size_t k,
                                                GeometryEngine& engine) const {
  const auto t_start = std::chrono::steady_clock::now();
  RelaxationOutcome outcome;
  outcome.query_concept = query;

  const std::vector<bool>& flagged = ingestion_->flagged;
  auto instance_count = [&](ConceptId b) -> size_t {
    auto it = ingestion_->concept_instances.find(b);
    return it == ingestion_->concept_instances.end() ? 0 : it->second.size();
  };

  // Line 2: candidates = flagged concepts within radius r. The expander
  // keeps its Dijkstra frontier across iterations, so dynamic growth only
  // pays for the newly uncovered ring, and candidate/coverage bookkeeping
  // only touches neighbors not seen at the previous radius.
  uint32_t radius = relaxation_options_.radius;
  RadiusExpander expander(*eks_, query);
  std::vector<Neighbor> neighbors;
  std::vector<ConceptId> candidates;
  size_t covered_instances = 0;
  if (query < flagged.size() && flagged[query]) {
    candidates.push_back(query);  // the term itself, when in the KB
    covered_instances += instance_count(query);
  }
  size_t consumed = 0;
  for (;;) {
    ++outcome.stats.radius_iterations;
    expander.ExpandTo(radius, &neighbors);
    for (; consumed < neighbors.size(); ++consumed) {
      ConceptId id = neighbors[consumed].id;
      if (id < flagged.size() && flagged[id]) {
        candidates.push_back(id);
        covered_instances += instance_count(id);
      }
    }
    if (!relaxation_options_.dynamic_radius || covered_instances >= k ||
        radius >= relaxation_options_.max_radius) {
      break;
    }
    ++radius;
  }
  outcome.effective_radius = radius;
  outcome.stats.neighbors_visited = neighbors.size();
  const auto t_candidates = std::chrono::steady_clock::now();
  outcome.stats.candidate_ns = ElapsedNs(t_start, t_candidates);

  // Line 3: score each candidate. Geometry comes from the memoization
  // cache when available, otherwise from the shared-frontier engine (one
  // upward BFS for the query, then one small cone per candidate).
  engine.SetSource(query);
  std::vector<ScoredConcept> scored;
  scored.reserve(candidates.size());
  for (ConceptId b : candidates) {
    ScoredConcept sc;
    sc.concept_id = b;
    if (b == query) {
      sc.similarity = 1.0;
    } else if (std::optional<PairGeometry> hit =
                   similarity_.CachedGeometry(query, b)) {
      ++outcome.stats.geometry_cache_hits;
      sc.similarity = similarity_.ScoreGeometry(*hit, query, b, context);
    } else {
      ++outcome.stats.geometry_cache_misses;
      PairGeometry g = engine.Compute(b);
      similarity_.StoreGeometry(query, b, g);
      sc.similarity = similarity_.ScoreGeometry(g, query, b, context);
    }
    auto it = ingestion_->concept_instances.find(b);
    if (it != ingestion_->concept_instances.end()) sc.instances = it->second;
    scored.push_back(std::move(sc));
  }
  outcome.stats.candidates_scanned = candidates.size();
  const auto t_scored = std::chrono::steady_clock::now();
  outcome.stats.scoring_ns = ElapsedNs(t_candidates, t_scored);

  // Sort by sim(A, B) descending; deterministic tie-break on concept id.
  std::sort(scored.begin(), scored.end(),
            [](const ScoredConcept& a, const ScoredConcept& b) {
              if (a.similarity != b.similarity) {
                return a.similarity > b.similarity;
              }
              return a.concept_id < b.concept_id;
            });

  // Lines 4-8: pop candidates until exactly k instances are gathered; the
  // last concept's contribution is truncated at the k boundary.
  for (ScoredConcept& sc : scored) {
    if (outcome.instances.size() >= k) break;
    for (InstanceId i : sc.instances) {
      if (outcome.instances.size() >= k) break;
      outcome.instances.push_back(i);
    }
    outcome.concepts.push_back(std::move(sc));
  }
  const auto t_ranked = std::chrono::steady_clock::now();
  outcome.stats.rank_ns = ElapsedNs(t_scored, t_ranked);
  outcome.stats.total_ns = ElapsedNs(t_start, t_ranked);
  return outcome;
}

std::vector<RelaxationOutcome> QueryRelaxer::RelaxBatch(
    std::span<const ConceptQuery> queries, unsigned num_threads) const {
  std::vector<RelaxationOutcome> outcomes(queries.size());
  if (queries.empty()) return outcomes;
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  num_threads = static_cast<unsigned>(
      std::min<size_t>(num_threads, queries.size()));

  std::atomic<size_t> next{0};
  auto worker = [&]() {
    GeometryEngine engine(eks_);
    for (;;) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= queries.size()) return;
      outcomes[i] =
          RelaxWithEngine(queries[i].concept_id, queries[i].context,
                          relaxation_options_.top_k, engine);
    }
  };
  if (num_threads == 1) {
    worker();
    return outcomes;
  }
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  for (unsigned t = 0; t < num_threads; ++t) workers.emplace_back(worker);
  for (std::thread& t : workers) t.join();
  return outcomes;
}

std::vector<RelaxationOutcome> QueryRelaxer::RelaxBatch(
    std::span<const PreparedQuery> queries) const {
  std::vector<RelaxationOutcome> outcomes;
  outcomes.reserve(queries.size());
  GeometryEngine engine(eks_);
  for (const PreparedQuery& query : queries) {
    const size_t k =
        query.top_k != 0 ? query.top_k : relaxation_options_.top_k;
    outcomes.push_back(
        RelaxWithEngine(query.concept_id, query.context, k, engine));
  }
  return outcomes;
}

size_t QueryRelaxer::PrecomputeSimilarities() const {
  if (!similarity_.options().memoize_geometry) return 0;
  const std::vector<bool>& flagged = ingestion_->flagged;
  GeometryEngine engine(eks_);
  for (ConceptId query = 0; query < flagged.size(); ++query) {
    if (!flagged[query]) continue;
    engine.SetSource(query);
    for (const Neighbor& n : NeighborsWithinRadius(
             *eks_, query, relaxation_options_.radius)) {
      if (n.id < flagged.size() && flagged[n.id] &&
          !similarity_.CachedGeometry(query, n.id)) {
        similarity_.StoreGeometry(query, n.id, engine.Compute(n.id));
      }
    }
  }
  return similarity_.cached_pairs();
}

}  // namespace medrelax
