#include "medrelax/relax/ingestion.h"

#include <algorithm>
#include <tuple>

#include "medrelax/corpus/corpus_stats.h"
#include "medrelax/graph/topology.h"
#include "medrelax/graph/traversal.h"
#include "medrelax/text/normalize.h"

namespace medrelax {

namespace {

// Builds mention statistics where each phrase is one surface form of an
// external concept; returns the stats plus surface->concept ownership.
struct ConceptMentions {
  MentionStats stats{std::vector<std::string>{}};
  // Parallel to the phrase list: owning concept of each phrase.
  std::vector<ConceptId> owner;
};

ConceptMentions CountConceptMentions(const ConceptDag& eks,
                                     const Corpus& corpus,
                                     size_t num_contexts) {
  ConceptMentions out;
  std::vector<std::string> phrases;
  for (ConceptId id = 0; id < eks.num_concepts(); ++id) {
    phrases.push_back(NormalizeTerm(eks.name(id)));
    out.owner.push_back(id);
    for (const std::string& syn : eks.synonyms(id)) {
      phrases.push_back(NormalizeTerm(syn));
      out.owner.push_back(id);
    }
  }
  out.stats = MentionStats(std::move(phrases));
  out.stats.Process(corpus, num_contexts);
  return out;
}

}  // namespace

Result<IngestionResult> RunIngestion(const KnowledgeBase& kb, ConceptDag* eks,
                                     const MappingFunction& mapper,
                                     const Corpus* corpus,
                                     const IngestionOptions& options) {
  MEDRELAX_RETURN_NOT_OK(ValidateExternalSource(*eks));

  IngestionResult result;

  // --- Context generation (Algorithm 1, lines 1-4). ---
  result.contexts = ContextRegistry::FromOntology(kb.ontology);
  const size_t num_contexts = result.contexts.size();

  // --- Mappings (lines 5-11). ---
  result.flagged.assign(eks->num_concepts(), false);
  for (InstanceId i = 0; i < kb.instances.num_instances(); ++i) {
    const Instance& instance = kb.instances.instance(i);
    std::optional<ConceptMatch> match = mapper.Map(instance.name);
    if (!match.has_value()) {
      ++result.unmapped_instances;
      continue;
    }
    ConceptId a = match->id;
    result.mappings.emplace_back(i, a);
    result.flagged[a] = true;
    result.concept_instances[a].push_back(i);
    // The contexts of A are the relationships associated with the mapped
    // instance's ontology concept (Section 5.1, "Concept frequency").
    const std::string& concept_name =
        kb.ontology.concept_name(instance.concept_id);
    for (ContextId ctx : result.contexts.ContextsWithRange(concept_name)) {
      std::vector<ContextId>& ctxs = result.concept_contexts[a];
      if (std::find(ctxs.begin(), ctxs.end(), ctx) == ctxs.end()) {
        ctxs.push_back(ctx);
      }
    }
  }

  // --- Concept frequency (lines 12-18). ---
  // Direct mention weight |A| per context, Equation 2's base term.
  std::vector<std::vector<double>> direct(
      num_contexts, std::vector<double>(eks->num_concepts(), 0.0));
  if (corpus != nullptr) {
    ConceptMentions mentions =
        CountConceptMentions(*eks, *corpus, num_contexts);
    for (size_t p = 0; p < mentions.owner.size(); ++p) {
      ConceptId owner = mentions.owner[p];
      for (ContextId ctx = 0; ctx < num_contexts; ++ctx) {
        direct[ctx][owner] += options.use_tfidf
                                  ? mentions.stats.TfIdfWeight(p, ctx)
                                  : static_cast<double>(
                                        mentions.stats.MentionCount(p, ctx));
      }
    }
  } else {
    // Corpus-free (QR-no-corpus): intrinsic structural IC — every concept
    // counts once, so freq reduces to subtree mass (Seco et al. style).
    for (ContextId ctx = 0; ctx < num_contexts; ++ctx) {
      for (ConceptId id = 0; id < eks->num_concepts(); ++id) {
        direct[ctx][id] = 1.0;
      }
    }
  }

  std::vector<ConceptId> roots = eks->Roots();
  MEDRELAX_ASSIGN_OR_RETURN(
      result.frequencies,
      PropagateFrequencies(*eks, direct, roots.front(), options.ic_smoothing));

  // --- External knowledge source customization (lines 19-23). ---
  if (options.add_shortcut_edges) {
    std::vector<std::tuple<ConceptId, ConceptId, uint32_t>> shortcuts;
    auto want = [&](uint32_t d) {
      return d >= 2 && d != UINT32_MAX &&
             (options.max_shortcut_distance == 0 ||
              d <= options.max_shortcut_distance);
    };
    for (ConceptId a = 0; a < eks->num_concepts(); ++a) {
      if (!result.flagged[a]) continue;
      // Flagged A: connect to every non-adjacent ancestor B.
      std::vector<uint32_t> up = UpDistances(*eks, a);
      for (ConceptId b = 0; b < eks->num_concepts(); ++b) {
        if (want(up[b])) shortcuts.emplace_back(a, b, up[b]);
      }
      // Flagged B(=a): connect every non-adjacent descendant to it.
      std::vector<uint32_t> down = DownDistances(*eks, a);
      for (ConceptId d = 0; d < eks->num_concepts(); ++d) {
        if (result.flagged[d]) continue;  // already handled by its own pass
        if (want(down[d])) shortcuts.emplace_back(d, a, down[d]);
      }
    }
    for (const auto& [child, parent, distance] : shortcuts) {
      size_t before = eks->num_shortcut_edges();
      MEDRELAX_RETURN_NOT_OK(eks->AddShortcut(child, parent, distance));
      if (eks->num_shortcut_edges() > before) ++result.shortcuts_added;
    }
  }

  return result;
}

}  // namespace medrelax
