#ifndef MEDRELAX_RELAX_RELAX_STATS_H_
#define MEDRELAX_RELAX_RELAX_STATS_H_

#include <cstddef>
#include <cstdint>

namespace medrelax {

/// Instrumentation counters for one online relaxation (or, via Accumulate,
/// a batch of them). Populated by QueryRelaxer and surfaced through
/// RelaxationOutcome::stats; bench_scaling reports them as benchmark
/// counters.
struct RelaxStats {
  /// Flagged concepts scored (Algorithm 2 line 3 iterations).
  size_t candidates_scanned = 0;
  /// Concepts surfaced by the radius search (flagged or not).
  size_t neighbors_visited = 0;
  /// Radius values tried: 1 for a fixed radius, more when dynamic growth
  /// had to widen the ball.
  size_t radius_iterations = 0;
  /// Pair geometries served from the memoization cache.
  size_t geometry_cache_hits = 0;
  /// Pair geometries computed on the spot (and cached when memoizing).
  size_t geometry_cache_misses = 0;
  /// Wall time of the candidate search (radius expansion + flag filter).
  uint64_t candidate_ns = 0;
  /// Wall time of geometry computation + scoring.
  uint64_t scoring_ns = 0;
  /// Wall time of the final sort + instance materialization.
  uint64_t rank_ns = 0;
  /// End-to-end wall time of the relaxation.
  uint64_t total_ns = 0;

  /// Adds `other` into this (used to aggregate batch statistics).
  void Accumulate(const RelaxStats& other) {
    candidates_scanned += other.candidates_scanned;
    neighbors_visited += other.neighbors_visited;
    radius_iterations += other.radius_iterations;
    geometry_cache_hits += other.geometry_cache_hits;
    geometry_cache_misses += other.geometry_cache_misses;
    candidate_ns += other.candidate_ns;
    scoring_ns += other.scoring_ns;
    rank_ns += other.rank_ns;
    total_ns += other.total_ns;
  }
};

}  // namespace medrelax

#endif  // MEDRELAX_RELAX_RELAX_STATS_H_
