#ifndef MEDRELAX_RELAX_EXPLAIN_H_
#define MEDRELAX_RELAX_EXPLAIN_H_

#include <string>
#include <vector>

#include "medrelax/graph/paths.h"
#include "medrelax/relax/similarity.h"

namespace medrelax {

/// A structured account of one similarity score — every term of
/// Equations 1-5 for a (query, candidate, context) triple. Useful for
/// debugging rankings, for surfacing "why am I seeing this?" answers in a
/// conversational UI, and heavily used by the test suite as an oracle.
struct SimilarityExplanation {
  ConceptId query = kInvalidConcept;
  ConceptId candidate = kInvalidConcept;
  ContextId context = kNoContext;
  /// False only for disconnected pairs in non-rooted graphs.
  bool connected = false;
  /// The generalize-then-specialize path from query to candidate.
  ConceptId apex = kInvalidConcept;
  std::vector<HopDirection> hops;
  /// p_{A,B} of Equation 4 (1.0 when the penalty is disabled).
  double path_penalty = 1.0;
  /// The (possibly tied) least common subsumers and their averaged IC.
  std::vector<ConceptId> lcs;
  double lcs_ic = 0.0;
  /// Per-concept ICs under the effective context (Equation 1).
  double query_ic = 0.0;
  double candidate_ic = 0.0;
  /// Equation 3 and the final Equation 5 value.
  double sim_ic = 0.0;
  double similarity = 0.0;

  /// Multi-line human-readable rendering with concept names resolved.
  [[nodiscard]] std::string Render(const ConceptDag& dag) const;
};

/// Computes the full explanation. Numerically identical to
/// model.Similarity(query, candidate, ctx) by construction (asserted in
/// tests).
SimilarityExplanation ExplainSimilarity(const SimilarityModel& model,
                                        const ConceptDag& dag,
                                        ConceptId query, ConceptId candidate,
                                        ContextId ctx);

}  // namespace medrelax

#endif  // MEDRELAX_RELAX_EXPLAIN_H_
