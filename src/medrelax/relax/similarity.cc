#include "medrelax/relax/similarity.h"

#include <cmath>
#include <utility>

namespace medrelax {

namespace {
uint64_t PairKey(ConceptId from, ConceptId to) {
  return (static_cast<uint64_t>(from) << 32) | to;
}
}  // namespace

ContextId SimilarityModel::EffectiveContext(ContextId ctx) const {
  return options_.use_context ? ctx : kNoContext;
}

double SimilarityModel::Ic(ConceptId id, ContextId ctx) const {
  return freq_->Ic(id, EffectiveContext(ctx));
}

PairGeometry SimilarityModel::ComputeGeometry(ConceptId from,
                                              ConceptId to) const {
  PairGeometry g;
  TaxonomicPath path = ShortestTaxonomicPath(*dag_, from, to);
  if (!path.found) return g;
  g.connected = true;
  const double d = static_cast<double>(path.hops.size());
  for (size_t i = 0; i < path.hops.size(); ++i) {
    double exponent = d - static_cast<double>(i + 1);  // Equation 4: D - i
    if (path.hops[i] == HopDirection::kGeneralization) {
      g.gen_exponent += exponent;
    } else {
      g.spec_exponent += exponent;
    }
  }
  LcsResult lcs = LeastCommonSubsumers(*dag_, from, to);
  g.lcs = std::move(lcs.concepts);
  return g;
}

PairGeometry SimilarityModel::Geometry(ConceptId from, ConceptId to) const {
  if (!options_.memoize_geometry) return ComputeGeometry(from, to);
  if (std::optional<PairGeometry> hit = CachedGeometry(from, to)) {
    return *std::move(hit);
  }
  PairGeometry g = ComputeGeometry(from, to);
  StoreGeometry(from, to, g);
  return g;
}

std::optional<PairGeometry> SimilarityModel::CachedGeometry(
    ConceptId from, ConceptId to) const {
  if (!options_.memoize_geometry) return std::nullopt;
  ReaderLock lock(geometry_mu_);
  auto it = geometry_cache_.find(PairKey(from, to));
  if (it == geometry_cache_.end()) return std::nullopt;
  return it->second;
}

void SimilarityModel::StoreGeometry(ConceptId from, ConceptId to,
                                    const PairGeometry& g) const {
  if (!options_.memoize_geometry) return;
  WriterLock lock(geometry_mu_);
  geometry_cache_.emplace(PairKey(from, to), g);
}

size_t SimilarityModel::cached_pairs() const {
  ReaderLock lock(geometry_mu_);
  return geometry_cache_.size();
}

double SimilarityModel::SimIc(ConceptId a, ConceptId b, ContextId ctx) const {
  if (a == b) return 1.0;
  ContextId effective = EffectiveContext(ctx);
  const PairGeometry g = Geometry(a, b);
  if (g.lcs.empty()) return 0.0;  // disconnected (non-rooted input)

  // Footnote 1: equal-distance ties are averaged.
  double lcs_ic = 0.0;
  for (ConceptId c : g.lcs) lcs_ic += freq_->Ic(c, effective);
  lcs_ic /= static_cast<double>(g.lcs.size());

  double denom = freq_->Ic(a, effective) + freq_->Ic(b, effective);
  if (denom <= 1e-12) {
    // Both concepts carry no information (e.g. both are the root); they are
    // only "similar" if identical, which was handled above.
    return 0.0;
  }
  return 2.0 * lcs_ic / denom;
}

double SimilarityModel::PathPenaltyForHops(
    const std::vector<HopDirection>& hops) const {
  const double d = static_cast<double>(hops.size());
  double penalty = 1.0;
  for (size_t i = 0; i < hops.size(); ++i) {
    double w = (hops[i] == HopDirection::kGeneralization)
                   ? options_.generalization_weight
                   : options_.specialization_weight;
    double exponent = d - static_cast<double>(i + 1);  // Equation 4: D - i
    penalty *= std::pow(w, exponent);
  }
  return penalty;
}

double SimilarityModel::PathPenalty(ConceptId from, ConceptId to) const {
  if (!options_.use_path_penalty) return 1.0;
  if (from == to) return 1.0;
  const PairGeometry g = Geometry(from, to);
  if (!g.connected) return 0.0;
  return std::pow(options_.generalization_weight, g.gen_exponent) *
         std::pow(options_.specialization_weight, g.spec_exponent);
}

double SimilarityModel::ScoreGeometry(const PairGeometry& g, ConceptId from,
                                      ConceptId to, ContextId ctx) const {
  if (from == to) return 1.0;
  ContextId effective = EffectiveContext(ctx);
  if (!g.connected || g.lcs.empty()) return 0.0;

  double penalty = 1.0;
  if (options_.use_path_penalty) {
    penalty = std::pow(options_.generalization_weight, g.gen_exponent) *
              std::pow(options_.specialization_weight, g.spec_exponent);
  }
  double lcs_ic = 0.0;
  for (ConceptId c : g.lcs) lcs_ic += freq_->Ic(c, effective);
  lcs_ic /= static_cast<double>(g.lcs.size());
  double denom = freq_->Ic(from, effective) + freq_->Ic(to, effective);
  if (denom <= 1e-12) return 0.0;
  return penalty * 2.0 * lcs_ic / denom;
}

double SimilarityModel::Similarity(ConceptId from, ConceptId to,
                                   ContextId ctx) const {
  if (from == to) return 1.0;
  return ScoreGeometry(Geometry(from, to), from, to, ctx);
}

}  // namespace medrelax
