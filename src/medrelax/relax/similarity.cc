#include "medrelax/relax/similarity.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <utility>

namespace medrelax {

namespace {

uint64_t PairKey(ConceptId from, ConceptId to) {
  return (static_cast<uint64_t>(from) << 32) | to;
}

/// splitmix64 finalizer: pair keys are structured (two packed 32-bit
/// ids), so shard selection needs real mixing before taking high bits.
uint64_t MixPairKey(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

SimilarityModel::SimilarityModel(const ConceptDag* dag,
                                 const FrequencyModel* freq,
                                 const SimilarityOptions& options)
    : SimilarityModel(dag, freq, options,
                      SizeShards(options.geometry_cache_shards,
                                 options.geometry_cache_capacity)) {}

SimilarityModel::SimilarityModel(const ConceptDag* dag,
                                 const FrequencyModel* freq,
                                 const SimilarityOptions& options,
                                 ShardSizing sizing)
    : dag_(dag),
      freq_(freq),
      options_(options),
      geometry_shard_capacity_(sizing.per_shard_capacity),
      geometry_shard_mask_(sizing.shard_count - 1),
      geometry_shards_(sizing.shard_count) {
  for (GeometryShard& shard : geometry_shards_) {
    shard.sketch =
        AdmissionSketch(options_.geometry_cache_policy.admission_sketch_slots);
  }
}

SimilarityModel::GeometryShard& SimilarityModel::ShardForPair(
    uint64_t pair_key) const {
  return geometry_shards_[(MixPairKey(pair_key) >> 48) &
                          geometry_shard_mask_];
}

void SimilarityModel::TouchEntry(GeometryShard& shard,
                                 GeometryEntry& entry) const {
  entry.stamp = ++shard.ticks;
  if (options_.geometry_cache_policy.eviction !=
      CachePolicy::Eviction::kDecayedActivity) {
    return;
  }
  entry.activity += shard.bump;
  shard.bump /= options_.geometry_cache_policy.decay_factor;
  if (shard.bump > kActivityRescaleThreshold) {
    for (auto& [key, e] : shard.map) e.activity *= kActivityRescaleFactor;
    shard.bump *= kActivityRescaleFactor;
  }
}

void SimilarityModel::SweepGeometryShard(GeometryShard& shard) const {
  MutexLock sweep_lock(geometry_sweep_mu_);
  MutexLock lock(shard.mu);
  if (shard.map.size() <= geometry_shard_capacity_) return;  // raced
  const bool activity = options_.geometry_cache_policy.eviction ==
                        CachePolicy::Eviction::kDecayedActivity;
  const size_t over = shard.map.size() - geometry_shard_capacity_;
  size_t target = over;
  if (activity) {
    const double fraction =
        std::clamp(options_.geometry_cache_policy.sweep_fraction, 0.0, 1.0);
    target = std::max<size_t>(
        over,
        static_cast<size_t>(fraction *
                            static_cast<double>(shard.map.size())));
  }
  // Rank ascending by activity with the stamp as tie-break (pure stamp
  // order under kLru), then erase the bottom of the ranking.
  struct Ranked {
    uint64_t key;
    double rank;
    uint64_t stamp;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(shard.map.size());
  for (const auto& [key, entry] : shard.map) {
    ranked.push_back({key,
                      activity ? entry.activity
                               : static_cast<double>(entry.stamp),
                      entry.stamp});
  }
  const size_t victims = std::min(target, ranked.size());
  std::nth_element(ranked.begin(),
                   ranked.begin() + static_cast<ptrdiff_t>(victims - 1),
                   ranked.end(), [](const Ranked& a, const Ranked& b) {
                     if (a.rank != b.rank) return a.rank < b.rank;
                     return a.stamp < b.stamp;
                   });
  for (size_t i = 0; i < victims; ++i) shard.map.erase(ranked[i].key);
  geometry_evictions_.fetch_add(victims, std::memory_order_relaxed);
  geometry_sweeps_.fetch_add(1, std::memory_order_relaxed);
}

ContextId SimilarityModel::EffectiveContext(ContextId ctx) const {
  return options_.use_context ? ctx : kNoContext;
}

double SimilarityModel::Ic(ConceptId id, ContextId ctx) const {
  return freq_->Ic(id, EffectiveContext(ctx));
}

PairGeometry SimilarityModel::ComputeGeometry(ConceptId from,
                                              ConceptId to) const {
  PairGeometry g;
  TaxonomicPath path = ShortestTaxonomicPath(*dag_, from, to);
  if (!path.found) return g;
  g.connected = true;
  const double d = static_cast<double>(path.hops.size());
  for (size_t i = 0; i < path.hops.size(); ++i) {
    double exponent = d - static_cast<double>(i + 1);  // Equation 4: D - i
    if (path.hops[i] == HopDirection::kGeneralization) {
      g.gen_exponent += exponent;
    } else {
      g.spec_exponent += exponent;
    }
  }
  LcsResult lcs = LeastCommonSubsumers(*dag_, from, to);
  g.lcs = std::move(lcs.concepts);
  return g;
}

PairGeometry SimilarityModel::Geometry(ConceptId from, ConceptId to) const {
  if (!options_.memoize_geometry) return ComputeGeometry(from, to);
  if (std::optional<PairGeometry> hit = CachedGeometry(from, to)) {
    return *std::move(hit);
  }
  PairGeometry g = ComputeGeometry(from, to);
  StoreGeometry(from, to, g);
  return g;
}

std::optional<PairGeometry> SimilarityModel::CachedGeometry(
    ConceptId from, ConceptId to) const {
  if (!options_.memoize_geometry) return std::nullopt;
  const uint64_t key = PairKey(from, to);
  GeometryShard& shard = ShardForPair(key);
  MutexLock lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) return std::nullopt;
  TouchEntry(shard, it->second);
  return it->second.geometry;
}

void SimilarityModel::StoreGeometry(ConceptId from, ConceptId to,
                                    const PairGeometry& g) const {
  if (!options_.memoize_geometry) return;
  const uint64_t key = PairKey(from, to);
  GeometryShard& shard = ShardForPair(key);
  bool needs_sweep = false;
  {
    MutexLock lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) return;  // first writer wins
    const bool bounded = geometry_shard_capacity_ > 0;
    const bool full = bounded && shard.map.size() >= geometry_shard_capacity_;
    if (full &&
        options_.geometry_cache_policy.eviction ==
            CachePolicy::Eviction::kDecayedActivity &&
        !shard.sketch.SeenOrRecord(MixPairKey(key))) {
      // Full shard, first sighting: one-pass scans (bulk expansion,
      // crawler-shaped traffic) must not evict the established hot
      // pairs. The second sighting admits.
      geometry_admission_rejects_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    GeometryEntry entry;
    entry.geometry = g;
    entry.activity = shard.bump;
    entry.stamp = ++shard.ticks;
    auto [inserted, ok] = shard.map.emplace(key, std::move(entry));
    // A doorkeeper admission was the pair's second sighting: credit it
    // as a touch so fresh admits compete with once-hit residents.
    if (full && ok &&
        options_.geometry_cache_policy.eviction ==
            CachePolicy::Eviction::kDecayedActivity) {
      TouchEntry(shard, inserted->second);
    }
    needs_sweep = bounded && shard.map.size() > geometry_shard_capacity_;
  }
  // Re-acquires in the documented order: geometry_sweep_mu_ before the
  // shard mutex, never while the insert's shard lock is held.
  if (needs_sweep) SweepGeometryShard(shard);
}

size_t SimilarityModel::cached_pairs() const {
  size_t total = 0;
  for (const GeometryShard& shard : geometry_shards_) {
    MutexLock lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

double SimilarityModel::SimIc(ConceptId a, ConceptId b, ContextId ctx) const {
  if (a == b) return 1.0;
  ContextId effective = EffectiveContext(ctx);
  const PairGeometry g = Geometry(a, b);
  if (g.lcs.empty()) return 0.0;  // disconnected (non-rooted input)

  // Footnote 1: equal-distance ties are averaged.
  double lcs_ic = 0.0;
  for (ConceptId c : g.lcs) lcs_ic += freq_->Ic(c, effective);
  lcs_ic /= static_cast<double>(g.lcs.size());

  double denom = freq_->Ic(a, effective) + freq_->Ic(b, effective);
  if (denom <= 1e-12) {
    // Both concepts carry no information (e.g. both are the root); they are
    // only "similar" if identical, which was handled above.
    return 0.0;
  }
  return 2.0 * lcs_ic / denom;
}

double SimilarityModel::PathPenaltyForHops(
    const std::vector<HopDirection>& hops) const {
  const double d = static_cast<double>(hops.size());
  double penalty = 1.0;
  for (size_t i = 0; i < hops.size(); ++i) {
    double w = (hops[i] == HopDirection::kGeneralization)
                   ? options_.generalization_weight
                   : options_.specialization_weight;
    double exponent = d - static_cast<double>(i + 1);  // Equation 4: D - i
    penalty *= std::pow(w, exponent);
  }
  return penalty;
}

double SimilarityModel::PathPenalty(ConceptId from, ConceptId to) const {
  if (!options_.use_path_penalty) return 1.0;
  if (from == to) return 1.0;
  const PairGeometry g = Geometry(from, to);
  if (!g.connected) return 0.0;
  return std::pow(options_.generalization_weight, g.gen_exponent) *
         std::pow(options_.specialization_weight, g.spec_exponent);
}

double SimilarityModel::ScoreGeometry(const PairGeometry& g, ConceptId from,
                                      ConceptId to, ContextId ctx) const {
  if (from == to) return 1.0;
  ContextId effective = EffectiveContext(ctx);
  if (!g.connected || g.lcs.empty()) return 0.0;

  double penalty = 1.0;
  if (options_.use_path_penalty) {
    penalty = std::pow(options_.generalization_weight, g.gen_exponent) *
              std::pow(options_.specialization_weight, g.spec_exponent);
  }
  double lcs_ic = 0.0;
  for (ConceptId c : g.lcs) lcs_ic += freq_->Ic(c, effective);
  lcs_ic /= static_cast<double>(g.lcs.size());
  double denom = freq_->Ic(from, effective) + freq_->Ic(to, effective);
  if (denom <= 1e-12) return 0.0;
  return penalty * 2.0 * lcs_ic / denom;
}

double SimilarityModel::Similarity(ConceptId from, ConceptId to,
                                   ContextId ctx) const {
  if (from == to) return 1.0;
  return ScoreGeometry(Geometry(from, to), from, to, ctx);
}

}  // namespace medrelax
