#ifndef MEDRELAX_RELAX_WEIGHT_LEARNER_H_
#define MEDRELAX_RELAX_WEIGHT_LEARNER_H_

#include <cstdint>
#include <vector>

#include "medrelax/graph/concept_dag.h"
#include "medrelax/graph/paths.h"

namespace medrelax {

/// One supervised example for direction-weight learning: a (query concept,
/// candidate concept) pair with a human/gold relevance label.
struct WeightExample {
  ConceptId query = kInvalidConcept;
  ConceptId candidate = kInvalidConcept;
  bool relevant = false;
};

/// Options for the logistic-regression weight learner.
struct WeightLearnerOptions {
  size_t epochs = 300;
  double learning_rate = 0.05;
  double l2 = 1e-4;
};

/// Learned direction weights plus fit diagnostics.
struct LearnedWeights {
  double generalization_weight = 0.9;
  double specialization_weight = 1.0;
  /// Training accuracy of the underlying classifier.
  double train_accuracy = 0.0;
  size_t num_examples = 0;
};

/// Learns the generalization/specialization weights of Equation 4 by
/// logistic regression, as Section 5.2 suggests ("To learn the weights of
/// both generalization and specialization, simple statistical regression
/// analysis such as logistic regression can be used").
///
/// Derivation: taking logs of Equation 4,
///   log p_{A,B} = sum_i (D - i) log w_{dir(i)}
///               = G * log w_gen + S * log w_spec,
/// where G (resp. S) is the sum of (D - i) over generalization (resp.
/// specialization) hops. Fitting   sigmoid(b + c_g * G + c_s * S)   to the
/// relevance labels makes -c_g, -c_s maximum-likelihood estimates of
/// -log w: the learned weights are w = exp(c), clamped into (0, 1].
LearnedWeights LearnDirectionWeights(const ConceptDag& dag,
                                     const std::vector<WeightExample>& examples,
                                     const WeightLearnerOptions& options);

}  // namespace medrelax

#endif  // MEDRELAX_RELAX_WEIGHT_LEARNER_H_
