#include "medrelax/relax/explain.h"

#include <sstream>

#include "medrelax/common/string_util.h"
#include "medrelax/graph/lcs.h"

namespace medrelax {

SimilarityExplanation ExplainSimilarity(const SimilarityModel& model,
                                        const ConceptDag& dag,
                                        ConceptId query, ConceptId candidate,
                                        ContextId ctx) {
  SimilarityExplanation ex;
  ex.query = query;
  ex.candidate = candidate;
  ex.context = ctx;

  TaxonomicPath path = ShortestTaxonomicPath(dag, query, candidate);
  ex.connected = path.found;
  if (!path.found) return ex;
  ex.apex = path.apex;
  ex.hops = path.hops;

  ex.path_penalty = model.PathPenalty(query, candidate);
  LcsResult lcs = LeastCommonSubsumers(dag, query, candidate);
  ex.lcs = lcs.concepts;
  for (ConceptId c : ex.lcs) ex.lcs_ic += model.Ic(c, ctx);
  if (!ex.lcs.empty()) ex.lcs_ic /= static_cast<double>(ex.lcs.size());
  ex.query_ic = model.Ic(query, ctx);
  ex.candidate_ic = model.Ic(candidate, ctx);
  ex.sim_ic = model.SimIc(query, candidate, ctx);
  ex.similarity = model.Similarity(query, candidate, ctx);
  return ex;
}

std::string SimilarityExplanation::Render(const ConceptDag& dag) const {
  std::ostringstream out;
  out << "sim(\"" << dag.name(query) << "\", \"" << dag.name(candidate)
      << "\") = " << StrFormat("%.4f", similarity) << "\n";
  if (!connected) {
    out << "  (concepts are not connected)\n";
    return out.str();
  }
  out << "  path (" << hops.size() << " hops via \"" << dag.name(apex)
      << "\"): ";
  for (size_t i = 0; i < hops.size(); ++i) {
    out << (hops[i] == HopDirection::kGeneralization ? "UP" : "DOWN");
    if (i + 1 < hops.size()) out << " ";
  }
  out << "\n";
  out << "  path penalty p = " << StrFormat("%.4f", path_penalty) << "\n";
  out << "  LCS: ";
  for (size_t i = 0; i < lcs.size(); ++i) {
    out << "\"" << dag.name(lcs[i]) << "\"";
    if (i + 1 < lcs.size()) out << ", ";
  }
  out << StrFormat("  IC(lcs) = %.4f", lcs_ic) << "\n";
  out << StrFormat("  IC(query) = %.4f, IC(candidate) = %.4f", query_ic,
                   candidate_ic)
      << "\n";
  out << StrFormat("  sim_IC = 2*IC(lcs)/(IC(a)+IC(b)) = %.4f", sim_ic)
      << "\n";
  out << StrFormat("  sim = p * sim_IC = %.4f", similarity) << "\n";
  return out.str();
}

}  // namespace medrelax
