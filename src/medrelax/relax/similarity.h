#ifndef MEDRELAX_RELAX_SIMILARITY_H_
#define MEDRELAX_RELAX_SIMILARITY_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "medrelax/common/cache_policy.h"
#include "medrelax/common/mutex.h"
#include "medrelax/graph/concept_dag.h"
#include "medrelax/graph/geometry.h"
#include "medrelax/graph/lcs.h"
#include "medrelax/graph/paths.h"
#include "medrelax/ontology/context.h"
#include "medrelax/relax/frequency_model.h"

namespace medrelax {

/// Knobs of the combined similarity measure. The defaults reproduce the
/// full QR configuration; the ablation flags realize the paper's variants
/// QR-no-context (ignore the query context, aggregate frequencies) and the
/// plain IC baseline (no path penalty).
struct SimilarityOptions {
  /// Weight of a generalization hop (w in Equation 4); the paper's
  /// empirical study sets 0.9 (Section 5.2), learnable via
  /// relax/weight_learner.h.
  double generalization_weight = 0.9;
  /// Weight of a specialization hop; the paper sets 1.0.
  double specialization_weight = 1.0;
  /// Apply the direction-aware path penalty p_{A,B} (Equation 4). Disabled
  /// = the plain IC measure of Equation 3 (the `IC` baseline of Table 2).
  bool use_path_penalty = true;
  /// Use the query context's frequency table; disabled = aggregate over
  /// all contexts (the `QR-no-context` variant of Table 2).
  bool use_context = true;
  /// Memoize the per-pair graph geometry (shortest taxonomic path + LCS
  /// set). This realizes the paper's "retrieves the pre-computed
  /// similarity" step (Section 5.2): the graph work per pair is paid
  /// once, after which scoring is a table lookup plus arithmetic.
  bool memoize_geometry = true;
  /// Total memoized pairs across all shards; 0 = unbounded (the
  /// pre-policy behavior). Sizing shapes performance, never answers, so
  /// none of the fields below participate in the options fingerprint or
  /// the flat-image config — a mapped snapshot always uses the defaults.
  size_t geometry_cache_capacity = size_t{1} << 20;
  /// Lock shards of the memo (rounded to a power of two, clamped so the
  /// capacity bound stays global), replacing the former single
  /// whole-table mutex.
  size_t geometry_cache_shards = 8;
  /// Eviction policy of the bounded memo (common/cache_policy.h): the
  /// decayed-activity default keeps the hot pair set resident; kLru
  /// ranks by last touch instead.
  CachePolicy geometry_cache_policy;
};

/// The paper's similarity measure (Section 5.2):
///   sim(A, B) = p_{A,B} * sim_IC(A, B)                      (Equation 5)
/// with the IC similarity of Equation 3 evaluated on context-conditioned
/// frequencies and the direction-weighted path penalty of Equation 4.
///
/// Thread-safe: geometry is returned by value and the memoization cache is
/// sharded under per-shard mutexes, so one model can serve concurrent
/// queries (QueryRelaxer::RelaxBatch relies on this). The memo is bounded
/// and activity-managed like the serving result cache (CachePolicy): hits
/// bump a decayed activity score, a full shard admits new pairs through a
/// second-hit sketch, and overflow triggers a bottom-activity sweep. Warm
/// the cache up front with QueryRelaxer::PrecomputeSimilarities to avoid
/// write contention.
class SimilarityModel {
 public:
  /// Borrows `dag` and `freq`, which must outlive the model.
  SimilarityModel(const ConceptDag* dag, const FrequencyModel* freq,
                  const SimilarityOptions& options);

  [[nodiscard]] const SimilarityOptions& options() const { return options_; }

  /// IC under the effective context (aggregated when context is disabled
  /// or kNoContext).
  [[nodiscard]] double Ic(ConceptId id, ContextId ctx) const;

  /// sim_IC of Equation 3, with the footnote-1 LCS policy: shortest-path
  /// tie-break, then average IC over remaining ties.
  [[nodiscard]] double SimIc(ConceptId a, ConceptId b, ContextId ctx) const;

  /// p_{A,B} of Equation 4 over the shortest taxonomic path *from* `from`
  /// *to* `to` (direction matters: Example 4 / Figure 6).
  [[nodiscard]] double PathPenalty(ConceptId from, ConceptId to) const;

  /// p for an explicit hop sequence (exposed for tests and the weight
  /// learner): prod_i w_i^(D-i), i one-based.
  [[nodiscard]]
  double PathPenaltyForHops(const std::vector<HopDirection>& hops) const;

  /// The combined measure of Equation 5.
  [[nodiscard]]
  double Similarity(ConceptId from, ConceptId to, ContextId ctx) const;

  /// Equation 5 evaluated on an externally supplied geometry (the
  /// QueryRelaxer hot path computes geometries through a shared-frontier
  /// GeometryEngine and scores them here). Returns 1 when from == to.
  [[nodiscard]] double ScoreGeometry(const PairGeometry& g, ConceptId from,
                                     ConceptId to, ContextId ctx) const;

  /// The memoized (or freshly computed) geometry for (from, to), by
  /// value: the result stays intact across later calls on any thread.
  [[nodiscard]] PairGeometry Geometry(ConceptId from, ConceptId to) const;

  /// Cache lookup only: nullopt on a miss or when memoization is off. A
  /// hit refreshes the pair's recency stamp and (under the activity
  /// policy) bumps its activity.
  [[nodiscard]] std::optional<PairGeometry> CachedGeometry(ConceptId from,
                                                           ConceptId to) const
      MEDRELAX_EXCLUDES(geometry_sweep_mu_);

  /// Inserts a geometry into the memoization cache (no-op when
  /// memoization is off; first writer wins on a race). When the target
  /// shard is full, a first-seen pair is rejected by the admission
  /// sketch, and an admitted overflow triggers a bottom-activity sweep.
  void StoreGeometry(ConceptId from, ConceptId to, const PairGeometry& g) const
      MEDRELAX_EXCLUDES(geometry_sweep_mu_);

  /// Number of memoized pairs (0 when memoization is off).
  [[nodiscard]] size_t cached_pairs() const;

  /// Memo management counters (0 until the bound is hit).
  [[nodiscard]] uint64_t geometry_sweeps() const {
    return geometry_sweeps_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t geometry_admission_rejects() const {
    return geometry_admission_rejects_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t geometry_evictions() const {
    return geometry_evictions_.load(std::memory_order_relaxed);
  }

  /// Memoized pairs one shard may hold (0 = unbounded).
  [[nodiscard]] size_t geometry_shard_capacity() const {
    return geometry_shard_capacity_;
  }
  [[nodiscard]] size_t geometry_shard_count() const {
    return geometry_shards_.size();
  }

 private:
  struct GeometryEntry {
    PairGeometry geometry;
    /// Decayed-activity score (kDecayedActivity ranking key).
    double activity = 0.0;
    /// Last-touch tick: the kLru ranking key and the activity tie-break.
    uint64_t stamp = 0;
  };
  struct GeometryShard {
    /// One detector site for all memo shards (never nested).
    mutable Mutex mu{"SimilarityModel::geometry_mu"};
    std::unordered_map<uint64_t, GeometryEntry> map MEDRELAX_GUARDED_BY(mu);
    /// Current activity increment (see CachePolicy::decay_factor).
    double bump MEDRELAX_GUARDED_BY(mu) = 1.0;
    /// Monotone touch clock feeding the recency stamps.
    uint64_t ticks MEDRELAX_GUARDED_BY(mu) = 0;
    /// Second-hit admission doorkeeper, consulted when the shard is full.
    AdmissionSketch sketch MEDRELAX_GUARDED_BY(mu){0};
  };

  /// Delegation target: sizing is computed once and lands in the const
  /// members below alongside the shard vector that shares it.
  SimilarityModel(const ConceptDag* dag, const FrequencyModel* freq,
                  const SimilarityOptions& options, ShardSizing sizing);

  [[nodiscard]] ContextId EffectiveContext(ContextId ctx) const;
  /// The naive per-pair formulation (four full-graph traversals); the
  /// reference the shared-frontier engine is property-tested against, and
  /// the fallback for standalone cache misses.
  [[nodiscard]]
  PairGeometry ComputeGeometry(ConceptId from, ConceptId to) const;

  [[nodiscard]] GeometryShard& ShardForPair(uint64_t pair_key) const;
  /// Refreshes `entry`'s stamp and bumps its activity under the activity
  /// policy (rescaling the shard when the increment overflows).
  void TouchEntry(GeometryShard& shard, GeometryEntry& entry) const
      MEDRELAX_REQUIRES(shard.mu);
  /// Evicts the shard's bottom-ranked entries (activity with stamp
  /// tie-break, or pure stamp order under kLru). Serializes on
  /// geometry_sweep_mu_, acquired before the shard mutex.
  void SweepGeometryShard(GeometryShard& shard) const
      MEDRELAX_EXCLUDES(geometry_sweep_mu_);

  const ConceptDag* dag_;
  const FrequencyModel* freq_;
  const SimilarityOptions options_;
  const size_t geometry_shard_capacity_;
  const uint64_t geometry_shard_mask_;
  /// Serializes memo sweeps; ordered before the shard mutex
  /// (docs/CONCURRENCY.md).
  mutable Mutex geometry_sweep_mu_{"SimilarityModel::geometry_sweep_mu"};
  mutable std::vector<GeometryShard>
      geometry_shards_;  // lint:allow(guarded-by) per-shard mu inside
  mutable std::atomic<uint64_t> geometry_sweeps_{0};
  mutable std::atomic<uint64_t> geometry_admission_rejects_{0};
  mutable std::atomic<uint64_t> geometry_evictions_{0};
};

}  // namespace medrelax

#endif  // MEDRELAX_RELAX_SIMILARITY_H_
