#ifndef MEDRELAX_RELAX_SIMILARITY_H_
#define MEDRELAX_RELAX_SIMILARITY_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "medrelax/common/mutex.h"
#include "medrelax/graph/concept_dag.h"
#include "medrelax/graph/geometry.h"
#include "medrelax/graph/lcs.h"
#include "medrelax/graph/paths.h"
#include "medrelax/ontology/context.h"
#include "medrelax/relax/frequency_model.h"

namespace medrelax {

/// Knobs of the combined similarity measure. The defaults reproduce the
/// full QR configuration; the ablation flags realize the paper's variants
/// QR-no-context (ignore the query context, aggregate frequencies) and the
/// plain IC baseline (no path penalty).
struct SimilarityOptions {
  /// Weight of a generalization hop (w in Equation 4); the paper's
  /// empirical study sets 0.9 (Section 5.2), learnable via
  /// relax/weight_learner.h.
  double generalization_weight = 0.9;
  /// Weight of a specialization hop; the paper sets 1.0.
  double specialization_weight = 1.0;
  /// Apply the direction-aware path penalty p_{A,B} (Equation 4). Disabled
  /// = the plain IC measure of Equation 3 (the `IC` baseline of Table 2).
  bool use_path_penalty = true;
  /// Use the query context's frequency table; disabled = aggregate over
  /// all contexts (the `QR-no-context` variant of Table 2).
  bool use_context = true;
  /// Memoize the per-pair graph geometry (shortest taxonomic path + LCS
  /// set). This realizes the paper's "retrieves the pre-computed
  /// similarity" step (Section 5.2): the graph work per pair is paid
  /// once, after which scoring is a table lookup plus arithmetic.
  bool memoize_geometry = true;
};

/// The paper's similarity measure (Section 5.2):
///   sim(A, B) = p_{A,B} * sim_IC(A, B)                      (Equation 5)
/// with the IC similarity of Equation 3 evaluated on context-conditioned
/// frequencies and the direction-weighted path penalty of Equation 4.
///
/// Thread-safe: geometry is returned by value and the memoization cache is
/// guarded by a shared mutex, so one model can serve concurrent queries
/// (QueryRelaxer::RelaxBatch relies on this). Warm the cache up front with
/// QueryRelaxer::PrecomputeSimilarities to avoid write contention.
class SimilarityModel {
 public:
  /// Borrows `dag` and `freq`, which must outlive the model.
  SimilarityModel(const ConceptDag* dag, const FrequencyModel* freq,
                  const SimilarityOptions& options)
      : dag_(dag), freq_(freq), options_(options) {}

  [[nodiscard]] const SimilarityOptions& options() const { return options_; }

  /// IC under the effective context (aggregated when context is disabled
  /// or kNoContext).
  [[nodiscard]] double Ic(ConceptId id, ContextId ctx) const;

  /// sim_IC of Equation 3, with the footnote-1 LCS policy: shortest-path
  /// tie-break, then average IC over remaining ties.
  [[nodiscard]] double SimIc(ConceptId a, ConceptId b, ContextId ctx) const;

  /// p_{A,B} of Equation 4 over the shortest taxonomic path *from* `from`
  /// *to* `to` (direction matters: Example 4 / Figure 6).
  [[nodiscard]] double PathPenalty(ConceptId from, ConceptId to) const;

  /// p for an explicit hop sequence (exposed for tests and the weight
  /// learner): prod_i w_i^(D-i), i one-based.
  [[nodiscard]]
  double PathPenaltyForHops(const std::vector<HopDirection>& hops) const;

  /// The combined measure of Equation 5.
  [[nodiscard]]
  double Similarity(ConceptId from, ConceptId to, ContextId ctx) const;

  /// Equation 5 evaluated on an externally supplied geometry (the
  /// QueryRelaxer hot path computes geometries through a shared-frontier
  /// GeometryEngine and scores them here). Returns 1 when from == to.
  [[nodiscard]] double ScoreGeometry(const PairGeometry& g, ConceptId from,
                                     ConceptId to, ContextId ctx) const;

  /// The memoized (or freshly computed) geometry for (from, to), by
  /// value: the result stays intact across later calls on any thread.
  [[nodiscard]] PairGeometry Geometry(ConceptId from, ConceptId to) const;

  /// Cache lookup only: nullopt on a miss or when memoization is off.
  [[nodiscard]] std::optional<PairGeometry> CachedGeometry(ConceptId from,
                                                           ConceptId to) const
      MEDRELAX_EXCLUDES(geometry_mu_);

  /// Inserts a geometry into the memoization cache (no-op when
  /// memoization is off; first writer wins on a race).
  void StoreGeometry(ConceptId from, ConceptId to, const PairGeometry& g) const
      MEDRELAX_EXCLUDES(geometry_mu_);

  /// Number of memoized pairs (0 when memoization is off).
  [[nodiscard]] size_t cached_pairs() const MEDRELAX_EXCLUDES(geometry_mu_);

 private:
  [[nodiscard]] ContextId EffectiveContext(ContextId ctx) const;
  /// The naive per-pair formulation (four full-graph traversals); the
  /// reference the shared-frontier engine is property-tested against, and
  /// the fallback for standalone cache misses.
  [[nodiscard]]
  PairGeometry ComputeGeometry(ConceptId from, ConceptId to) const;

  const ConceptDag* dag_;
  const FrequencyModel* freq_;
  const SimilarityOptions options_;
  mutable SharedMutex geometry_mu_{"SimilarityModel::geometry_mu"};
  mutable std::unordered_map<uint64_t, PairGeometry> geometry_cache_
      MEDRELAX_GUARDED_BY(geometry_mu_);
};

}  // namespace medrelax

#endif  // MEDRELAX_RELAX_SIMILARITY_H_
