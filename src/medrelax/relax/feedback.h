#ifndef MEDRELAX_RELAX_FEEDBACK_H_
#define MEDRELAX_RELAX_FEEDBACK_H_

#include <cstdint>
#include <unordered_map>

#include "medrelax/relax/query_relaxer.h"

namespace medrelax {

/// Knobs of the relevance-feedback layer.
struct FeedbackOptions {
  /// Multiplicative boost applied to a concept's score when the user
  /// accepts it as a relaxation result.
  double accept_boost = 1.3;
  /// Multiplicative penalty when the user rejects a result.
  double reject_penalty = 0.5;
  /// Fraction of the (log-space) adjustment propagated to the concept's
  /// direct taxonomy neighbors, so feedback generalizes beyond the exact
  /// concept ("hypothermia is wrong here" also dampens its siblings'
  /// parents a little).
  double neighborhood_share = 0.4;
  /// Clamp on the accumulated per-concept factor.
  double min_factor = 0.1;
  double max_factor = 4.0;
  /// Candidate over-fetch multiplier: the wrapper pulls overfetch * k
  /// candidates from the base relaxer before re-ranking, so dismissed
  /// results can actually be *replaced* (not merely demoted) in the
  /// returned top-k.
  size_t overfetch = 3;
};

/// Relevance-feedback wrapper around a QueryRelaxer — the improvement the
/// paper's user-study discussion proposes ("incorporate the user's
/// relevance feedback [39] in the query relaxation method, and ...
/// progressively improve the relaxed results", Section 7.2).
///
/// Feedback is tracked per (external concept, context): accepting a result
/// boosts it (and, attenuated, its direct taxonomy neighbors); rejecting
/// dampens likewise. Relaxation outcomes are re-scored by the accumulated
/// factors and re-ranked. The underlying relaxer is untouched, so feedback
/// is per-session state layered over the shared offline artifacts.
class FeedbackRelaxer {
 public:
  /// Borrows `base` and `dag`; both must outlive the wrapper.
  FeedbackRelaxer(const QueryRelaxer* base, const ConceptDag* dag,
                  const FeedbackOptions& options)
      : base_(base), dag_(dag), options_(options) {}

  /// Algorithm 2 with feedback re-ranking applied to the scored concepts
  /// (instances are re-materialized in the new order).
  [[nodiscard]]
  RelaxationOutcome RelaxConcept(ConceptId query, ContextId context) const;

  /// Records that the user accepted `candidate` as a relaxation under
  /// `context`.
  void Accept(ConceptId candidate, ContextId context);

  /// Records a rejection.
  void Reject(ConceptId candidate, ContextId context);

  /// The accumulated multiplicative factor for (concept, context); 1.0
  /// when no feedback touched it.
  [[nodiscard]] double Factor(ConceptId concept_id, ContextId context) const;

  /// Number of (concept, context) cells carrying feedback.
  [[nodiscard]] size_t feedback_cells() const { return factors_.size(); }

  /// Forgets all feedback (new session).
  void Reset() { factors_.clear(); }

 private:
  void Apply(ConceptId candidate, ContextId context, double factor);

  static uint64_t Key(ConceptId c, ContextId ctx) {
    return (static_cast<uint64_t>(ctx) << 32) | c;
  }

  const QueryRelaxer* base_;
  const ConceptDag* dag_;
  FeedbackOptions options_;
  std::unordered_map<uint64_t, double> factors_;
};

}  // namespace medrelax

#endif  // MEDRELAX_RELAX_FEEDBACK_H_
