#include "medrelax/relax/weight_learner.h"

#include <algorithm>
#include <cmath>

namespace medrelax {

namespace {

double Sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

}  // namespace

LearnedWeights LearnDirectionWeights(const ConceptDag& dag,
                                     const std::vector<WeightExample>& examples,
                                     const WeightLearnerOptions& options) {
  LearnedWeights out;

  // Feature extraction: exponent mass per direction along the shortest
  // taxonomic path (see header derivation).
  struct Row {
    double g = 0.0;
    double s = 0.0;
    double y = 0.0;
  };
  std::vector<Row> rows;
  rows.reserve(examples.size());
  for (const WeightExample& ex : examples) {
    TaxonomicPath path = ShortestTaxonomicPath(dag, ex.query, ex.candidate);
    if (!path.found || path.hops.empty()) continue;
    Row row;
    const double d = static_cast<double>(path.hops.size());
    for (size_t i = 0; i < path.hops.size(); ++i) {
      double exponent = d - static_cast<double>(i + 1);
      if (path.hops[i] == HopDirection::kGeneralization) {
        row.g += exponent;
      } else {
        row.s += exponent;
      }
    }
    row.y = ex.relevant ? 1.0 : 0.0;
    rows.push_back(row);
  }
  out.num_examples = rows.size();
  if (rows.empty()) return out;

  // Batch gradient descent on the regularized log-loss.
  double b = 0.0, cg = 0.0, cs = 0.0;
  const double n = static_cast<double>(rows.size());
  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    double db = 0.0, dcg = 0.0, dcs = 0.0;
    for (const Row& row : rows) {
      double err = Sigmoid(b + cg * row.g + cs * row.s) - row.y;
      db += err;
      dcg += err * row.g;
      dcs += err * row.s;
    }
    b -= options.learning_rate * (db / n);
    cg -= options.learning_rate * (dcg / n + options.l2 * cg);
    cs -= options.learning_rate * (dcs / n + options.l2 * cs);
  }

  size_t correct = 0;
  for (const Row& row : rows) {
    double p = Sigmoid(b + cg * row.g + cs * row.s);
    if ((p >= 0.5) == (row.y >= 0.5)) ++correct;
  }
  out.train_accuracy = static_cast<double>(correct) / n;

  // c is the MLE of log w; a valid per-hop weight lies in (0, 1].
  out.generalization_weight = std::clamp(std::exp(cg), 1e-3, 1.0);
  out.specialization_weight = std::clamp(std::exp(cs), 1e-3, 1.0);
  return out;
}

}  // namespace medrelax
