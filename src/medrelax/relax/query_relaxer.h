#ifndef MEDRELAX_RELAX_QUERY_RELAXER_H_
#define MEDRELAX_RELAX_QUERY_RELAXER_H_

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "medrelax/common/result.h"
#include "medrelax/graph/geometry.h"
#include "medrelax/matching/matcher.h"
#include "medrelax/relax/ingestion.h"
#include "medrelax/relax/relax_stats.h"
#include "medrelax/relax/similarity.h"

namespace medrelax {

/// Knobs of the online query relaxation (Algorithm 2).
struct RelaxationOptions {
  /// Search radius r in original taxonomy hops. Shortcut edges do not
  /// change the radius-r ball: they carry their pre-customization distance
  /// (Section 4.2), so the same concepts are reachable with or without
  /// customization.
  uint32_t radius = 4;
  /// Grow the radius when fewer than k candidates are found ("dynamically
  /// decided if a fixed r cannot provide k results", Section 5.2).
  bool dynamic_radius = true;
  /// Upper bound for dynamic growth.
  uint32_t max_radius = 16;
  /// k: how many results to return.
  size_t top_k = 10;
};

/// One relaxed concept with its score and the KB instances it maps to.
struct ScoredConcept {
  ConceptId concept_id = kInvalidConcept;
  double similarity = 0.0;
  std::vector<InstanceId> instances;
};

/// Outcome of relaxing one [query term, context] input.
struct RelaxationOutcome {
  /// The external concept Q the query term resolved to.
  ConceptId query_concept = kInvalidConcept;
  /// Ranked flagged concepts (descending similarity), truncated once k
  /// instances are covered. The last concept's instance list may extend
  /// past k; `instances` below is the truncated answer.
  std::vector<ScoredConcept> concepts;
  /// Res of Algorithm 2: the union of the concepts' instances in rank
  /// order, truncated to exactly k entries (fewer only when the whole
  /// neighborhood covers fewer than k).
  std::vector<InstanceId> instances;
  /// Radius actually used (>= options.radius when dynamic growth kicked in).
  uint32_t effective_radius = 0;
  /// Instrumentation for this relaxation.
  RelaxStats stats;
};

/// A concept-level query for batch relaxation.
struct ConceptQuery {
  ConceptId concept_id = kInvalidConcept;
  ContextId context = kNoContext;
};

/// An already-resolved, already-validated query with its effective k, the
/// unit the serving layer's same-context batch drain hands to RelaxBatch
/// below (docs/SERVING.md "Coalescing & batching").
struct PreparedQuery {
  ConceptId concept_id = kInvalidConcept;
  ContextId context = kNoContext;
  /// 0 = the relaxer's configured top_k.
  size_t top_k = 0;
};

/// The online query relaxation engine (Algorithm 2 + Equation 5).
///
/// Borrows the external DAG (with shortcut edges applied), the ingestion
/// result, and a mapping function for resolving query terms; all must
/// outlive the relaxer.
///
/// Thread-safe: all entry points are const and the underlying
/// SimilarityModel synchronizes its geometry cache, so one relaxer can
/// serve concurrent queries. RelaxBatch exploits this with a worker pool
/// holding one GeometryEngine per thread.
class QueryRelaxer {
 public:
  QueryRelaxer(const ConceptDag* eks, const IngestionResult* ingestion,
               const MappingFunction* mapper,
               const SimilarityOptions& similarity_options,
               const RelaxationOptions& relaxation_options);

  /// Full Algorithm 2: resolves `term` to an external concept and returns
  /// the top-k semantically related KB instances under `context`
  /// (kNoContext aggregates frequencies over all contexts).
  /// Fails with NotFound when the term maps to no external concept.
  [[nodiscard]] Result<RelaxationOutcome> Relax(std::string_view term,
                                  ContextId context) const;

  /// Concept-level entry point used when the query concept is already
  /// known (evaluation harness; NLQ integration).
  [[nodiscard]]
  RelaxationOutcome RelaxConcept(ConceptId query, ContextId context) const;

  /// Like RelaxConcept but with an explicit k, so wrappers (e.g. the
  /// relevance-feedback layer) can over-fetch candidates before re-ranking.
  [[nodiscard]] RelaxationOutcome RelaxConceptWithK(ConceptId query,
                                                    ContextId context,
                                                    size_t k) const;

  /// Relaxes a batch of concept-level queries on `num_threads` workers
  /// (0 = hardware concurrency). Outcomes are returned in input order and
  /// are identical to sequential RelaxConcept calls; each worker reuses
  /// one GeometryEngine across its share of the batch.
  [[nodiscard]] std::vector<RelaxationOutcome> RelaxBatch(
      std::span<const ConceptQuery> queries, unsigned num_threads = 0) const;

  /// Serving-drain form: relaxes the prepared queries sequentially on the
  /// calling thread through ONE shared GeometryEngine, so a drained group
  /// of same-context (often same-concept) requests shares the upward
  /// sweep instead of paying one per request — the engine's SetSource
  /// early-out makes consecutive duplicates nearly free. Outcomes are in
  /// input order and identical to per-query RelaxConceptWithK calls.
  [[nodiscard]] std::vector<RelaxationOutcome> RelaxBatch(
      std::span<const PreparedQuery> queries) const;

  /// Offline pre-computation (Section 5.2: the online phase "retrieves
  /// the pre-computed similarity between A and each external concept in
  /// its neighborhood"): warms the memoized pair geometry for every
  /// (flagged concept, neighborhood member) pair within the configured
  /// radius, so first-query latency equals steady-state latency. Returns
  /// the number of cached pairs afterwards. A no-op (returning 0) when
  /// geometry memoization is disabled. Deliberately not [[nodiscard]]:
  /// callers warming the cache for the side effect may drop the count.
  size_t PrecomputeSimilarities() const;

  /// The underlying similarity model (exposed for diagnostics and tests).
  [[nodiscard]]
  const SimilarityModel& similarity() const { return similarity_; }

  [[nodiscard]]
  const RelaxationOptions& options() const { return relaxation_options_; }

 private:
  /// The shared-engine core of Algorithm 2: incremental radius growth,
  /// cache-first geometry through `engine`, scoring, ranking, exact-k
  /// truncation. `engine` must be anchored on any source or fresh; it is
  /// re-anchored on `query`.
  RelaxationOutcome RelaxWithEngine(ConceptId query, ContextId context,
                                    size_t k, GeometryEngine& engine) const;

  const ConceptDag* eks_;
  const IngestionResult* ingestion_;
  const MappingFunction* mapper_;
  SimilarityModel similarity_;
  RelaxationOptions relaxation_options_;
};

}  // namespace medrelax

#endif  // MEDRELAX_RELAX_QUERY_RELAXER_H_
