#include "medrelax/relax/baseline_measures.h"

#include "medrelax/graph/lcs.h"
#include "medrelax/graph/paths.h"
#include "medrelax/graph/topology.h"

namespace medrelax {

Result<BaselineMeasures> BaselineMeasures::Create(const ConceptDag* dag,
                                                  const FrequencyModel* freq) {
  MEDRELAX_ASSIGN_OR_RETURN(std::vector<uint32_t> depths,
                            DepthsFromRoot(*dag));
  return BaselineMeasures(dag, freq, std::move(depths));
}

double BaselineMeasures::WuPalmer(ConceptId a, ConceptId b) const {
  if (a == b) return 1.0;
  LcsResult lcs = LeastCommonSubsumers(*dag_, a, b);
  if (lcs.concepts.empty()) return 0.0;
  // Average the tied subsumers' depths (mirrors the footnote-1 handling).
  double lcs_depth = 0.0;
  for (ConceptId c : lcs.concepts) {
    lcs_depth += static_cast<double>(depths_[c]) + 1.0;
  }
  lcs_depth /= static_cast<double>(lcs.concepts.size());
  double da = static_cast<double>(depths_[a]) + 1.0;
  double db = static_cast<double>(depths_[b]) + 1.0;
  return 2.0 * lcs_depth / (da + db);
}

double BaselineMeasures::PathSimilarity(ConceptId a, ConceptId b) const {
  if (a == b) return 1.0;
  TaxonomicPath path = ShortestTaxonomicPath(*dag_, a, b);
  if (!path.found) return 0.0;
  return 1.0 / (1.0 + static_cast<double>(path.length()));
}

double BaselineMeasures::Resnik(ConceptId a, ConceptId b,
                                ContextId ctx) const {
  LcsResult lcs = LeastCommonSubsumers(*dag_, a, b);
  if (lcs.concepts.empty() || freq_ == nullptr) return 0.0;
  double ic = 0.0;
  for (ConceptId c : lcs.concepts) ic += freq_->Ic(c, ctx);
  return ic / static_cast<double>(lcs.concepts.size());
}

}  // namespace medrelax
