#include "medrelax/embedding/sif.h"

#include <cmath>

#include "medrelax/embedding/svd.h"

namespace medrelax {

SifModel::SifModel(const WordVectors* vectors,
                   const std::vector<std::vector<std::string>>& reference_phrases,
                   const SifOptions& options)
    : vectors_(vectors), options_(options) {
  if (!options_.remove_first_component || vectors_->dimensions() == 0) return;

  const size_t d = vectors_->dimensions();
  std::vector<double> rows;
  rows.reserve(reference_phrases.size() * d);
  size_t n = 0;
  for (const auto& phrase : reference_phrases) {
    std::vector<double> v = WeightedAverage(phrase);
    double norm = 0.0;
    for (double x : v) norm += x * x;
    if (norm < 1e-24) continue;  // fully OOV phrase carries no signal
    rows.insert(rows.end(), v.begin(), v.end());
    ++n;
  }
  if (n < 2) return;
  common_component_ =
      DominantDirection(rows, n, d, options_.pca_iterations, options_.seed);
}

std::vector<double> SifModel::WeightedAverage(
    const std::vector<std::string>& tokens) const {
  const size_t d = vectors_->dimensions();
  std::vector<double> v(d, 0.0);
  size_t in_vocab = 0;
  for (const std::string& tok : tokens) {
    WordId id = vectors_->vocabulary().Find(tok);
    if (id != kOovWord) {
      const double* w = vectors_->Vector(id);
      double p = vectors_->vocabulary().Probability(id);
      double weight = options_.weight_a / (options_.weight_a + p);
      for (size_t j = 0; j < d; ++j) v[j] += weight * w[j];
      ++in_vocab;
      continue;
    }
    if (!options_.subword_backoff) continue;
    // OOV (typo, unseen inflection): fastText-style subword backoff,
    // weighted by the subword-estimated probability so the token sits on
    // the same SIF scale as the in-vocabulary word it approximates.
    std::vector<double> sub = vectors_->EmbedWord(tok);
    if (sub.size() != d) continue;
    double p = vectors_->EstimateProbability(tok);
    double weight = options_.weight_a / (options_.weight_a + p);
    for (size_t j = 0; j < d; ++j) v[j] += weight * sub[j];
    ++in_vocab;
  }
  if (in_vocab > 0) {
    for (double& x : v) x /= static_cast<double>(in_vocab);
  }
  return v;
}

std::vector<double> SifModel::Embed(
    const std::vector<std::string>& tokens) const {
  std::vector<double> v = WeightedAverage(tokens);
  if (!common_component_.empty()) {
    double dot = 0.0;
    for (size_t j = 0; j < v.size(); ++j) dot += v[j] * common_component_[j];
    for (size_t j = 0; j < v.size(); ++j) v[j] -= dot * common_component_[j];
  }
  return v;
}

double SifModel::PhraseCosine(const std::vector<std::string>& a,
                              const std::vector<std::string>& b) const {
  std::vector<double> va = Embed(a);
  std::vector<double> vb = Embed(b);
  if (va.empty() || vb.empty()) return 0.0;
  return CosineSimilarity(va.data(), vb.data(), va.size());
}

}  // namespace medrelax
