#include "medrelax/embedding/word_vectors.h"

#include <cmath>

#include "medrelax/embedding/ppmi.h"
#include "medrelax/embedding/svd.h"
#include "medrelax/text/tokenize.h"

namespace medrelax {

WordVectors WordVectors::Train(const Corpus& corpus,
                               const WordVectorOptions& options) {
  WordVectors model;
  CooccurrenceCounter counter(options.window);
  counter.Process(corpus);
  // Rebuild the vocabulary in id order so WordIds line up with matrix rows.
  for (WordId id = 0; id < counter.vocabulary().size(); ++id) {
    model.vocab_.AddWithCount(counter.vocabulary().word(id),
                              counter.vocabulary().count(id));
  }

  SparseMatrix ppmi = BuildPpmiMatrix(counter, options.ppmi_alpha);
  TruncatedEigen eig = TruncatedSymmetricEigen(
      ppmi, options.dimensions, options.svd_iterations, options.seed);

  model.dims_ = eig.rank;
  const size_t v = counter.vocabulary().size();
  model.matrix_.assign(v * model.dims_, 0.0);
  for (size_t i = 0; i < v; ++i) {
    for (size_t j = 0; j < model.dims_; ++j) {
      double scale =
          std::pow(std::fabs(eig.values[j]), options.eigenvalue_power);
      model.matrix_[i * model.dims_ + j] =
          eig.vectors[i * eig.rank + j] * scale;
    }
  }

  // Subword table: each boundary-marked char n-gram maps to the mean of
  // the vectors of the words containing it (a cheap, deterministic stand-in
  // for fastText's jointly trained subword vectors).
  if (options.use_subword && model.dims_ > 0) {
    model.min_ngram_ = options.min_ngram;
    model.max_ngram_ = options.max_ngram;
    std::unordered_map<std::string, size_t> counts;
    for (WordId id = 0; id < v; ++id) {
      std::string marked = "<" + model.vocab_.word(id) + ">";
      const double* row = &model.matrix_[static_cast<size_t>(id) * model.dims_];
      double prob = model.vocab_.Probability(id);
      for (size_t n = options.min_ngram; n <= options.max_ngram; ++n) {
        for (const std::string& gram : CharNgrams(marked, n)) {
          std::vector<double>& acc = model.ngram_vectors_[gram];
          if (acc.empty()) acc.assign(model.dims_, 0.0);
          for (size_t j = 0; j < model.dims_; ++j) acc[j] += row[j];
          model.ngram_probs_[gram] += prob;
          ++counts[gram];
        }
      }
    }
    for (auto& [gram, vec] : model.ngram_vectors_) {
      double c = static_cast<double>(counts[gram]);
      for (double& x : vec) x /= c;
      model.ngram_probs_[gram] /= c;
    }
  }
  return model;
}

std::vector<double> WordVectors::EmbedWord(const std::string& word) const {
  const double* direct = Vector(word);
  if (direct != nullptr) {
    return std::vector<double>(direct, direct + dims_);
  }
  if (ngram_vectors_.empty() || dims_ == 0) return {};
  std::vector<double> out(dims_, 0.0);
  size_t hits = 0;
  std::string marked = "<" + word + ">";
  for (size_t n = min_ngram_; n <= max_ngram_; ++n) {
    for (const std::string& gram : CharNgrams(marked, n)) {
      auto it = ngram_vectors_.find(gram);
      if (it == ngram_vectors_.end()) continue;
      for (size_t j = 0; j < dims_; ++j) out[j] += it->second[j];
      ++hits;
    }
  }
  if (hits == 0) return {};
  for (double& x : out) x /= static_cast<double>(hits);
  return out;
}

double WordVectors::EstimateProbability(const std::string& word) const {
  WordId id = vocab_.Find(word);
  if (id != kOovWord) return vocab_.Probability(id);
  if (ngram_probs_.empty()) return 0.0;
  double total = 0.0;
  size_t hits = 0;
  std::string marked = "<" + word + ">";
  for (size_t n = min_ngram_; n <= max_ngram_; ++n) {
    for (const std::string& gram : CharNgrams(marked, n)) {
      auto it = ngram_probs_.find(gram);
      if (it == ngram_probs_.end()) continue;
      total += it->second;
      ++hits;
    }
  }
  return hits == 0 ? 0.0 : total / static_cast<double>(hits);
}

bool WordVectors::Contains(const std::string& word) const {
  return vocab_.Find(word) != kOovWord;
}

const double* WordVectors::Vector(const std::string& word) const {
  WordId id = vocab_.Find(word);
  return id == kOovWord ? nullptr : Vector(id);
}

const double* WordVectors::Vector(WordId id) const {
  if (id >= vocab_.size() || dims_ == 0) return nullptr;
  return &matrix_[static_cast<size_t>(id) * dims_];
}

double WordVectors::Cosine(const std::string& a, const std::string& b) const {
  const double* va = Vector(a);
  const double* vb = Vector(b);
  if (va == nullptr || vb == nullptr) return 0.0;
  return CosineSimilarity(va, vb, dims_);
}

double WordVectors::OovRate(const std::vector<std::string>& words) const {
  if (words.empty()) return 0.0;
  size_t oov = 0;
  for (const std::string& w : words) {
    if (!Contains(w)) ++oov;
  }
  return static_cast<double>(oov) / static_cast<double>(words.size());
}

double CosineSimilarity(const double* a, const double* b, size_t d) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t i = 0; i < d; ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na < 1e-24 || nb < 1e-24) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

}  // namespace medrelax
