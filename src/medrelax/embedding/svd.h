#ifndef MEDRELAX_EMBEDDING_SVD_H_
#define MEDRELAX_EMBEDDING_SVD_H_

#include <cstdint>
#include <vector>

#include "medrelax/common/random.h"
#include "medrelax/embedding/ppmi.h"

namespace medrelax {

/// Rank-k eigendecomposition of a symmetric matrix.
struct TruncatedEigen {
  /// Row-major V x k matrix of eigenvectors (columns orthonormal).
  std::vector<double> vectors;
  /// The k dominant eigenvalues, descending by magnitude.
  std::vector<double> values;
  size_t dim = 0;
  size_t rank = 0;
};

/// Computes the k dominant eigenpairs of a symmetric sparse matrix by
/// subspace (orthogonal) iteration: Q <- orth(M Q) repeated `iterations`
/// times from a seeded random start. Deterministic given the seed.
///
/// PPMI matrices are symmetric positive-semidefinite-ish in practice, so
/// the dominant eigenpairs coincide with the top singular triplets and the
/// standard SVD word-vector construction W = U_k diag(sqrt(sigma_k))
/// applies (see word_vectors.h).
TruncatedEigen TruncatedSymmetricEigen(const SparseMatrix& m, size_t k,
                                       size_t iterations, uint64_t seed);

/// Dominant eigenvector of the covariance of a set of row vectors (used by
/// SIF's first-principal-component removal). `rows` is row-major n x d.
std::vector<double> DominantDirection(const std::vector<double>& rows,
                                      size_t n, size_t d, size_t iterations,
                                      uint64_t seed);

}  // namespace medrelax

#endif  // MEDRELAX_EMBEDDING_SVD_H_
