#include "medrelax/embedding/cooccurrence.h"

#include <algorithm>

namespace medrelax {

WordId Vocabulary::Add(const std::string& word) {
  auto [it, inserted] = index_.emplace(word, static_cast<WordId>(words_.size()));
  if (inserted) {
    words_.push_back(word);
    counts_.push_back(0);
  }
  ++counts_[it->second];
  ++total_;
  return it->second;
}

WordId Vocabulary::AddWithCount(const std::string& word, uint64_t count) {
  auto [it, inserted] = index_.emplace(word, static_cast<WordId>(words_.size()));
  if (inserted) {
    words_.push_back(word);
    counts_.push_back(0);
  }
  counts_[it->second] += count;
  total_ += count;
  return it->second;
}

WordId Vocabulary::Find(const std::string& word) const {
  auto it = index_.find(word);
  return it == index_.end() ? kOovWord : it->second;
}

double Vocabulary::Probability(WordId id) const {
  if (id >= counts_.size() || total_ == 0) return 0.0;
  return static_cast<double>(counts_[id]) / static_cast<double>(total_);
}

void CooccurrenceCounter::Process(const Corpus& corpus) {
  std::vector<WordId> ids;
  for (const Document& doc : corpus.documents()) {
    for (const DocumentSection& section : doc.sections) {
      ids.clear();
      ids.reserve(section.tokens.size());
      for (const std::string& tok : section.tokens) ids.push_back(vocab_.Add(tok));
      if (rows_.size() < vocab_.size()) rows_.resize(vocab_.size());
      for (size_t i = 0; i < ids.size(); ++i) {
        size_t end = std::min(ids.size(), i + 1 + window_);
        for (size_t j = i + 1; j < end; ++j) {
          ++rows_[ids[i]][ids[j]];
          ++rows_[ids[j]][ids[i]];
          total_pairs_ += 2;
        }
      }
    }
  }
  if (rows_.size() < vocab_.size()) rows_.resize(vocab_.size());
}

uint64_t CooccurrenceCounter::Count(WordId a, WordId b) const {
  if (a >= rows_.size()) return 0;
  auto it = rows_[a].find(b);
  return it == rows_[a].end() ? 0 : it->second;
}

const std::unordered_map<WordId, uint64_t>& CooccurrenceCounter::Row(
    WordId a) const {
  if (a >= rows_.size()) return empty_;
  return rows_[a];
}

}  // namespace medrelax
