#ifndef MEDRELAX_EMBEDDING_SIF_H_
#define MEDRELAX_EMBEDDING_SIF_H_

#include <string>
#include <vector>

#include "medrelax/embedding/word_vectors.h"

namespace medrelax {

/// Options for the SIF sentence-embedding model.
struct SifOptions {
  /// The `a` of the a/(a + p(w)) reweighting; 1e-3 is the paper's default.
  double weight_a = 1e-3;
  /// Power-iteration rounds for the common-component estimation.
  size_t pca_iterations = 40;
  /// Seed for the deterministic power iteration.
  uint64_t seed = 7;
  /// When true, remove the projection on the corpus-level first principal
  /// component (the full Arora et al. construction). When false the model
  /// degrades to a plain probability-weighted average, which is the
  /// "average of its words' embeddings" fallback the paper applies to
  /// Embedding-pre-trained multi-word terms.
  bool remove_first_component = true;
  /// Back off to subword (char-n-gram) vectors for OOV words when the
  /// underlying WordVectors carry a subword table.
  bool subword_backoff = true;
};

/// Smooth Inverse Frequency sentence embeddings (Arora, Liang, Ma — ICLR
/// 2017, the paper's reference [3]): probability-weighted average of word
/// vectors with the common discourse component removed. Used to embed
/// multi-word concept names ("pain of head and neck region") for the
/// EMBEDDING mapping method and the Embedding-trained baseline.
class SifModel {
 public:
  /// Fits the common component on a reference phrase set (typically all
  /// external-concept names). Borrows `vectors`, which must outlive the
  /// model.
  SifModel(const WordVectors* vectors,
           const std::vector<std::vector<std::string>>& reference_phrases,
           const SifOptions& options);

  /// Embeds a tokenized phrase; returns a zero vector when every token is
  /// OOV. Output has vectors->dimensions() entries.
  [[nodiscard]]
  std::vector<double> Embed(const std::vector<std::string>& tokens) const;

  /// Cosine similarity of two tokenized phrases.
  double PhraseCosine(const std::vector<std::string>& a,
                      const std::vector<std::string>& b) const;

  /// The fitted common-component direction (empty when removal disabled).
  [[nodiscard]] const std::vector<double>& common_component() const {
    return common_component_;
  }

 private:
  std::vector<double> WeightedAverage(
      const std::vector<std::string>& tokens) const;

  const WordVectors* vectors_;
  SifOptions options_;
  std::vector<double> common_component_;
};

}  // namespace medrelax

#endif  // MEDRELAX_EMBEDDING_SIF_H_
