#ifndef MEDRELAX_EMBEDDING_WORD_VECTORS_H_
#define MEDRELAX_EMBEDDING_WORD_VECTORS_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "medrelax/corpus/document.h"
#include "medrelax/embedding/cooccurrence.h"

namespace medrelax {

/// Training knobs for the PPMI+SVD word-vector model.
struct WordVectorOptions {
  /// Co-occurrence window size.
  uint32_t window = 5;
  /// Embedding dimensionality.
  size_t dimensions = 50;
  /// Subspace-iteration rounds for the truncated SVD.
  size_t svd_iterations = 30;
  /// Context-distribution smoothing of PPMI.
  double ppmi_alpha = 0.75;
  /// Seed for the deterministic SVD start.
  uint64_t seed = 42;
  /// Eigenvalue weighting exponent: W = U diag(|lambda|^p). p = 0.5 is the
  /// standard symmetric split of the spectrum.
  double eigenvalue_power = 0.5;
  /// Build character-n-gram vectors (fastText-style, the paper's reference
  /// [8]) so out-of-vocabulary words — typos, unseen inflections — can be
  /// embedded from their subwords.
  bool use_subword = true;
  /// Character n-gram range for the subword table (boundary-marked).
  size_t min_ngram = 3;
  size_t max_ngram = 5;
};

/// Dense word vectors over an interned vocabulary, with cosine lookup.
///
/// These implement the "word embedding" mapping method of Section 7.2 and
/// serve as the base of the SIF sentence embeddings [Arora et al., ICLR'17]
/// the paper uses for multi-word query terms.
class WordVectors {
 public:
  WordVectors() = default;

  /// Trains vectors on a corpus: co-occurrence -> PPMI -> truncated SVD.
  static WordVectors Train(const Corpus& corpus,
                           const WordVectorOptions& options);

  /// Embedding dimensionality (0 before training).
  [[nodiscard]] size_t dimensions() const { return dims_; }

  /// The vocabulary the model was trained on.
  [[nodiscard]] const Vocabulary& vocabulary() const { return vocab_; }

  /// True iff the word is in-vocabulary.
  [[nodiscard]] bool Contains(const std::string& word) const;

  /// The vector for a word; nullptr for OOV.
  [[nodiscard]] const double* Vector(const std::string& word) const;
  [[nodiscard]] const double* Vector(WordId id) const;

  /// Cosine similarity of two words; 0 when either is OOV.
  [[nodiscard]] double Cosine(const std::string& a, const std::string& b) const;

  /// Embeds a word even when OOV: in-vocabulary words return their trained
  /// vector; OOV words back off to the average of their known character-
  /// n-gram vectors (fastText-style). Returns an empty vector when nothing
  /// is known about the word (no subword table or no known n-grams).
  [[nodiscard]] std::vector<double> EmbedWord(const std::string& word) const;

  /// True iff the subword table was built.
  [[nodiscard]] bool has_subwords() const { return !ngram_vectors_.empty(); }

  /// Estimates the unigram probability of a word: the true probability for
  /// in-vocabulary words, and the mean probability of subword-sharing
  /// vocabulary words for OOV words (0 when nothing is known). Keeps the
  /// SIF weight of a typo'd token on the same scale as its intended word.
  [[nodiscard]] double EstimateProbability(const std::string& word) const;

  /// Fraction of `words` that are OOV (the vocabulary-mismatch metric that
  /// explains Embedding-pre-trained's poor showing in Table 2).
  [[nodiscard]] double OovRate(const std::vector<std::string>& words) const;

 private:
  Vocabulary vocab_;
  size_t dims_ = 0;
  std::vector<double> matrix_;  // row-major |V| x dims
  size_t min_ngram_ = 3;
  size_t max_ngram_ = 5;
  /// Boundary-marked char n-gram -> mean vector of the words containing it.
  std::unordered_map<std::string, std::vector<double>> ngram_vectors_;
  /// Boundary-marked char n-gram -> mean unigram probability of the words
  /// containing it.
  std::unordered_map<std::string, double> ngram_probs_;
};

/// Cosine similarity of two raw vectors of length d (0 if either is ~zero).
double CosineSimilarity(const double* a, const double* b, size_t d);

}  // namespace medrelax

#endif  // MEDRELAX_EMBEDDING_WORD_VECTORS_H_
