#include "medrelax/embedding/svd.h"

#include <algorithm>
#include <cmath>

namespace medrelax {

namespace {

// Modified Gram-Schmidt on k column vectors stored column-major in `cols`
// (each of length n). Columns that collapse to ~zero are re-randomized.
void Orthonormalize(std::vector<std::vector<double>>* cols, Rng* rng) {
  for (size_t j = 0; j < cols->size(); ++j) {
    std::vector<double>& v = (*cols)[j];
    for (size_t prev = 0; prev < j; ++prev) {
      const std::vector<double>& u = (*cols)[prev];
      double dot = 0.0;
      for (size_t i = 0; i < v.size(); ++i) dot += v[i] * u[i];
      for (size_t i = 0; i < v.size(); ++i) v[i] -= dot * u[i];
    }
    double norm = 0.0;
    for (double x : v) norm += x * x;
    norm = std::sqrt(norm);
    if (norm < 1e-12) {
      for (double& x : v) x = rng->Gaussian();
      // One re-orthogonalization pass for the regenerated column.
      for (size_t prev = 0; prev < j; ++prev) {
        const std::vector<double>& u = (*cols)[prev];
        double dot = 0.0;
        for (size_t i = 0; i < v.size(); ++i) dot += v[i] * u[i];
        for (size_t i = 0; i < v.size(); ++i) v[i] -= dot * u[i];
      }
      norm = 0.0;
      for (double x : v) norm += x * x;
      norm = std::sqrt(std::max(norm, 1e-12));
    }
    for (double& x : v) x /= norm;
  }
}

}  // namespace

TruncatedEigen TruncatedSymmetricEigen(const SparseMatrix& m, size_t k,
                                       size_t iterations, uint64_t seed) {
  TruncatedEigen out;
  const size_t n = m.dim();
  out.dim = n;
  out.rank = std::min(k, n);
  if (n == 0 || out.rank == 0) return out;

  Rng rng(seed);
  std::vector<std::vector<double>> q(out.rank, std::vector<double>(n));
  for (auto& col : q) {
    for (double& x : col) x = rng.Gaussian();
  }
  Orthonormalize(&q, &rng);

  std::vector<double> tmp;
  for (size_t it = 0; it < iterations; ++it) {
    for (auto& col : q) {
      m.Multiply(col, &tmp);
      col.swap(tmp);
    }
    Orthonormalize(&q, &rng);
  }

  // Rayleigh quotients as eigenvalue estimates.
  out.values.resize(out.rank);
  for (size_t j = 0; j < out.rank; ++j) {
    m.Multiply(q[j], &tmp);
    double lambda = 0.0;
    for (size_t i = 0; i < n; ++i) lambda += q[j][i] * tmp[i];
    out.values[j] = lambda;
  }

  // Sort eigenpairs by |lambda| descending.
  std::vector<size_t> order(out.rank);
  for (size_t j = 0; j < out.rank; ++j) order[j] = j;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return std::fabs(out.values[a]) > std::fabs(out.values[b]);
  });

  out.vectors.assign(n * out.rank, 0.0);
  std::vector<double> sorted_values(out.rank);
  for (size_t j = 0; j < out.rank; ++j) {
    sorted_values[j] = out.values[order[j]];
    const std::vector<double>& col = q[order[j]];
    for (size_t i = 0; i < n; ++i) out.vectors[i * out.rank + j] = col[i];
  }
  out.values = std::move(sorted_values);
  return out;
}

std::vector<double> DominantDirection(const std::vector<double>& rows,
                                      size_t n, size_t d, size_t iterations,
                                      uint64_t seed) {
  std::vector<double> v(d, 0.0);
  if (n == 0 || d == 0) return v;
  Rng rng(seed);
  for (double& x : v) x = rng.Gaussian();

  std::vector<double> proj(n, 0.0);
  for (size_t it = 0; it < iterations; ++it) {
    // w = (X^T X) v computed as X^T (X v) without materializing X^T X.
    for (size_t i = 0; i < n; ++i) {
      double dot = 0.0;
      const double* row = &rows[i * d];
      for (size_t j = 0; j < d; ++j) dot += row[j] * v[j];
      proj[i] = dot;
    }
    std::vector<double> w(d, 0.0);
    for (size_t i = 0; i < n; ++i) {
      const double* row = &rows[i * d];
      for (size_t j = 0; j < d; ++j) w[j] += proj[i] * row[j];
    }
    double norm = 0.0;
    for (double x : w) norm += x * x;
    norm = std::sqrt(norm);
    if (norm < 1e-12) break;
    for (size_t j = 0; j < d; ++j) v[j] = w[j] / norm;
  }
  return v;
}

}  // namespace medrelax
