#include "medrelax/embedding/ppmi.h"

#include <cmath>

namespace medrelax {

size_t SparseMatrix::nnz() const {
  size_t n = 0;
  for (const auto& row : rows_) n += row.size();
  return n;
}

void SparseMatrix::Multiply(const std::vector<double>& x,
                            std::vector<double>* y) const {
  y->assign(rows_.size(), 0.0);
  for (size_t r = 0; r < rows_.size(); ++r) {
    double acc = 0.0;
    for (const Entry& e : rows_[r]) acc += e.value * x[e.col];
    (*y)[r] = acc;
  }
}

SparseMatrix BuildPpmiMatrix(const CooccurrenceCounter& counts, double alpha) {
  const Vocabulary& vocab = counts.vocabulary();
  const size_t v = vocab.size();
  SparseMatrix m(v);
  const double total = static_cast<double>(counts.total_pairs());
  if (total <= 0.0) return m;

  // Marginals: row sums (word totals) and alpha-smoothed context totals.
  std::vector<double> row_sum(v, 0.0);
  for (WordId a = 0; a < v; ++a) {
    for (const auto& [b, c] : counts.Row(a)) {
      (void)b;
      row_sum[a] += static_cast<double>(c);
    }
  }
  double smoothed_total = 0.0;
  std::vector<double> ctx_smoothed(v, 0.0);
  for (WordId b = 0; b < v; ++b) {
    ctx_smoothed[b] = std::pow(row_sum[b], alpha);
    smoothed_total += ctx_smoothed[b];
  }
  if (smoothed_total <= 0.0) return m;

  for (WordId a = 0; a < v; ++a) {
    if (row_sum[a] <= 0.0) continue;
    for (const auto& [b, c] : counts.Row(a)) {
      double p_ab = static_cast<double>(c) / total;
      double p_a = row_sum[a] / total;
      double p_b = ctx_smoothed[b] / smoothed_total;
      if (p_a <= 0.0 || p_b <= 0.0) continue;
      double pmi = std::log(p_ab / (p_a * p_b));
      if (pmi > 0.0) m.Add(a, b, pmi);
    }
  }
  return m;
}

}  // namespace medrelax
