#ifndef MEDRELAX_EMBEDDING_COOCCURRENCE_H_
#define MEDRELAX_EMBEDDING_COOCCURRENCE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "medrelax/corpus/document.h"

namespace medrelax {

/// Dense word identifier inside a Vocabulary.
using WordId = uint32_t;

/// Sentinel for "word not in vocabulary".
inline constexpr WordId kOovWord = UINT32_MAX;

/// Interned corpus vocabulary with unigram counts.
class Vocabulary {
 public:
  Vocabulary() = default;

  /// Interns a word, bumping its count.
  WordId Add(const std::string& word);

  /// Interns a word, bumping its count by `count` in one step.
  WordId AddWithCount(const std::string& word, uint64_t count);

  /// Lookup without interning; kOovWord when absent.
  [[nodiscard]] WordId Find(const std::string& word) const;

  [[nodiscard]] size_t size() const { return words_.size(); }
  [[nodiscard]] const std::string& word(WordId id) const { return words_[id]; }
  [[nodiscard]] uint64_t count(WordId id) const { return counts_[id]; }
  [[nodiscard]] uint64_t total_count() const { return total_; }

  /// Unigram probability p(w) = count / total, used by SIF weighting.
  [[nodiscard]] double Probability(WordId id) const;

 private:
  std::vector<std::string> words_;
  std::vector<uint64_t> counts_;
  std::unordered_map<std::string, WordId> index_;
  uint64_t total_ = 0;
};

/// Symmetric word-word co-occurrence counts within a sliding window.
///
/// The counting substrate for the PPMI+SVD word vectors that implement the
/// paper's EMBEDDING mapping method and the Embedding-trained /
/// Embedding-pre-trained baselines (Section 7.2).
class CooccurrenceCounter {
 public:
  /// `window` is the max distance (in tokens) between co-occurring words.
  explicit CooccurrenceCounter(uint32_t window) : window_(window) {}

  /// Scans every section of every document, interning words and counting
  /// symmetric co-occurrences (each unordered pair counted once per
  /// occurrence, both orientations recorded).
  void Process(const Corpus& corpus);

  [[nodiscard]] const Vocabulary& vocabulary() const { return vocab_; }

  /// Co-occurrence count for the ordered pair (a, b). Symmetric by
  /// construction.
  [[nodiscard]] uint64_t Count(WordId a, WordId b) const;

  /// Row of co-occurrence counts for word `a` (unordered column order).
  [[nodiscard]] const std::unordered_map<WordId, uint64_t>& Row(WordId a) const;

  /// Sum of all co-occurrence counts (both orientations).
  [[nodiscard]] uint64_t total_pairs() const { return total_pairs_; }

 private:
  uint32_t window_;
  Vocabulary vocab_;
  std::vector<std::unordered_map<WordId, uint64_t>> rows_;
  std::unordered_map<WordId, uint64_t> empty_;
  uint64_t total_pairs_ = 0;
};

}  // namespace medrelax

#endif  // MEDRELAX_EMBEDDING_COOCCURRENCE_H_
