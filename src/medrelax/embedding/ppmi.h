#ifndef MEDRELAX_EMBEDDING_PPMI_H_
#define MEDRELAX_EMBEDDING_PPMI_H_

#include <cstdint>
#include <vector>

#include "medrelax/embedding/cooccurrence.h"

namespace medrelax {

/// Sparse symmetric matrix in row-major coordinate lists, the input to the
/// truncated SVD. Row i holds (column, value) pairs sorted by column.
class SparseMatrix {
 public:
  explicit SparseMatrix(size_t dim) : rows_(dim) {}

  [[nodiscard]] size_t dim() const { return rows_.size(); }

  /// Appends an entry; caller guarantees one entry per (row, col).
  void Add(uint32_t row, uint32_t col, double value) {
    rows_[row].push_back({col, value});
  }

  /// Number of stored non-zeros.
  [[nodiscard]] size_t nnz() const;

  /// y = M x (dense vector product).
  void Multiply(const std::vector<double>& x, std::vector<double>* y) const;

  struct Entry {
    uint32_t col;
    double value;
  };
  [[nodiscard]]
  const std::vector<Entry>& row(uint32_t r) const { return rows_[r]; }

 private:
  std::vector<std::vector<Entry>> rows_;
};

/// Builds the Positive Pointwise Mutual Information matrix from
/// co-occurrence counts:
///   PPMI(a, b) = max(0, log( p(a,b) / (p(a) p(b)) ))
/// with probabilities estimated from the co-occurrence totals. A standard
/// context-distribution smoothing exponent `alpha` (default 0.75) tempers
/// the bias toward rare words.
SparseMatrix BuildPpmiMatrix(const CooccurrenceCounter& counts,
                             double alpha = 0.75);

}  // namespace medrelax

#endif  // MEDRELAX_EMBEDDING_PPMI_H_
