#ifndef MEDRELAX_COMMON_CACHE_POLICY_H_
#define MEDRELAX_COMMON_CACHE_POLICY_H_

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace medrelax {

/// Eviction strategy shared by the serving result cache and the
/// similarity-model geometry memo.
///
/// `kDecayedActivity` borrows the decaying-activity machinery of the qute
/// QBF solver (VSIDS-style variable activities plus activity-ranked
/// constraint-DB reduction sweeps):
///
///   * Every hit adds the cache's current *bump increment* to the entry's
///     activity score. Instead of decaying every entry geometrically on
///     every hit (an O(n) pass), the bump itself grows by 1/decay_factor —
///     numerically identical ordering, amortized O(1). When the increment
///     overflows a fixed threshold, all activities and the increment are
///     rescaled down together, preserving their ratios.
///   * A *second-hit admission filter*: once a shard is full, a key seen
///     for the first time is recorded in a small recency sketch and
///     rejected; only a key seen twice within the sketch's memory is
///     admitted. One-hit wonders (scans, crawlers, key-space walks) stop
///     evicting the established hot set. While the shard has free space,
///     inserts are admitted unconditionally, so a cache that never fills
///     behaves exactly like LRU.
///   * A *periodic sweep* instead of per-insert LRU eviction: when an
///     admitted insert pushes a shard over capacity, the bottom
///     `sweep_fraction` of entries ranked by activity (least-recently-used
///     breaking ties) is evicted in one pass.
///
/// `kLru` is the pre-policy behavior, kept selectable for golden parity
/// and as the baseline the skewed-mix benchmarks gate against.
struct CachePolicy {
  enum class Eviction : uint8_t {
    kLru,
    kDecayedActivity,
  };

  Eviction eviction = Eviction::kDecayedActivity;

  /// Geometric decay per hit: the bump increment grows by 1/decay_factor,
  /// so older activity contributions fade relative to fresh ones. qute
  /// ships 0.95 for its constraint activities; the same value holds here
  /// (~4500 hits between rescales at the threshold below).
  double decay_factor = 0.95;

  /// Fraction of a shard evicted per sweep (bottom of the activity
  /// ranking). Larger fractions sweep less often but evict deeper into
  /// the warm set.
  double sweep_fraction = 0.25;

  /// Slots in the per-shard admission sketch (rounded up to a power of
  /// two). Sized to the scan burst it must absorb: a slot remembers one
  /// recently-seen fingerprint, and a colliding newcomer overwrites it.
  size_t admission_sketch_slots = 64;
};

/// Shard sizing shared by both caches: the shard count rounds up to a
/// power of two (mask selection), then clamps down when the total
/// capacity is smaller than the shard count — per-shard capacities are
/// floor-divided with a minimum of one entry, so without the clamp a
/// capacity-1 cache with 8 shards would hold 8 entries. The invariant is
/// shard_count * per_shard_capacity <= capacity; capacity 0 means
/// unbounded shards (per_shard_capacity 0).
struct ShardSizing {
  size_t shard_count;
  size_t per_shard_capacity;
};

[[nodiscard]] inline ShardSizing SizeShards(size_t requested_shards,
                                            size_t capacity) {
  size_t shards = std::bit_ceil(std::max<size_t>(requested_shards, 1));
  if (capacity > 0 && shards > capacity) shards = std::bit_floor(capacity);
  return {.shard_count = shards,
          .per_shard_capacity =
              capacity == 0 ? 0 : std::max<size_t>(1, capacity / shards)};
}

/// Activity magnitude that triggers a rescale, and the factor applied.
/// Doubles hold ~1e308, so 1e100 leaves ample headroom for the activities
/// themselves (entry activity <= bump * hits-since-rescale).
inline constexpr double kActivityRescaleThreshold = 1e100;
inline constexpr double kActivityRescaleFactor = 1e-100;

/// The second-hit admission doorkeeper: a tiny direct-mapped table of key
/// fingerprints. `SeenOrRecord` answers "was this fingerprint recorded
/// since it last fell out of its slot?" and records it when not. A false
/// return means first sighting (candidate should be rejected once);
/// collisions merely overwrite — a false "seen" requires two keys with
/// identical 64-bit fingerprints, a false "new" just delays admission by
/// one extra sighting.
///
/// Not internally synchronized: callers embed one sketch per shard and
/// consult it under that shard's lock.
class AdmissionSketch {
 public:
  explicit AdmissionSketch(size_t slots)
      : slots_(std::bit_ceil(slots < 2 ? size_t{2} : slots), 0),
        mask_(slots_.size() - 1) {}

  /// True when `fingerprint` is already recorded (second sighting —
  /// admit); otherwise records it and returns false (first sighting).
  [[nodiscard]] bool SeenOrRecord(uint64_t fingerprint) {
    if (fingerprint == 0) fingerprint = 1;  // 0 marks an empty slot
    uint64_t& slot = slots_[fingerprint & mask_];
    if (slot == fingerprint) return true;
    slot = fingerprint;
    return false;
  }

  void Clear() { slots_.assign(slots_.size(), 0); }

  [[nodiscard]] size_t slot_count() const { return slots_.size(); }

 private:
  std::vector<uint64_t> slots_;
  uint64_t mask_;
};

}  // namespace medrelax

#endif  // MEDRELAX_COMMON_CACHE_POLICY_H_
