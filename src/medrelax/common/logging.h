#ifndef MEDRELAX_COMMON_LOGGING_H_
#define MEDRELAX_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace medrelax {

/// Severity levels for the minimal logging facility.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);

/// Current global minimum level.
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log line that emits to stderr on destruction; aborts the
/// process after emitting when constructed as fatal (MEDRELAX_CHECK).
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  bool fatal_;
  std::ostringstream stream_;
};

}  // namespace internal

#define MEDRELAX_LOG(level)                                              \
  if (::medrelax::LogLevel::k##level < ::medrelax::GetLogLevel()) {      \
  } else                                                                 \
    ::medrelax::internal::LogMessage(::medrelax::LogLevel::k##level,     \
                                     __FILE__, __LINE__)                 \
        .stream()

/// Unconditional invariant check that aborts with a message. Used for
/// internal invariants only; API misuse is reported via Status instead.
#define MEDRELAX_CHECK(cond)                                            \
  if (cond) {                                                           \
  } else                                                                \
    ::medrelax::internal::LogMessage(::medrelax::LogLevel::kError,      \
                                     __FILE__, __LINE__, /*fatal=*/true) \
            .stream()                                                   \
        << "Check failed: " #cond " "

}  // namespace medrelax

#endif  // MEDRELAX_COMMON_LOGGING_H_
