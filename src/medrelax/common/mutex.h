#ifndef MEDRELAX_COMMON_MUTEX_H_
#define MEDRELAX_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "medrelax/common/thread_annotations.h"

#ifdef MEDRELAX_DEADLOCK_DEBUG
#include "medrelax/common/deadlock_detector.h"
#endif

namespace medrelax {

/// The project's lock vocabulary. Outside common/ these wrappers replace
/// std::mutex / std::shared_mutex / std::condition_variable entirely (the
/// raw-mutex lint enforces it), buying two things the standard types lack:
///
///   * Capability annotations: under `clang++ -Wthread-safety` every
///     acquisition and every access to a MEDRELAX_GUARDED_BY member is
///     machine-checked at compile time (thread_annotations.h).
///   * Lock-order deadlock detection: under MEDRELAX_DEADLOCK_DEBUG (ON in
///     the asan/tsan presets) every Mutex registers its construction name
///     as an acquisition *site* in a global order graph, and a would-be
///     lock-order cycle aborts deterministically at the second ordering's
///     first observation — no unlucky interleaving required
///     (deadlock_detector.h).
///
/// Name every mutex after its owner ("Class::member"); instances sharing a
/// name share a detector site (e.g. one name for all cache shards).
/// docs/CONCURRENCY.md holds the global lock inventory and its total
/// order.
class MEDRELAX_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex([[maybe_unused]] const char* name = "medrelax::Mutex")
#ifdef MEDRELAX_DEADLOCK_DEBUG
      : site_(DeadlockDetector::Instance().RegisterSite(name))
#endif
  {
  }

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() MEDRELAX_ACQUIRE() {
#ifdef MEDRELAX_DEADLOCK_DEBUG
    // Record (and cycle-check) before blocking: a would-be deadlock must
    // abort with a report, not hang.
    DeadlockDetector::Instance().OnAcquire(site_);
#endif
    mu_.lock();
  }

  void Unlock() MEDRELAX_RELEASE() {
    mu_.unlock();
#ifdef MEDRELAX_DEADLOCK_DEBUG
    DeadlockDetector::Instance().OnRelease(site_);
#endif
  }

  [[nodiscard]] bool TryLock() MEDRELAX_TRY_ACQUIRE(true) {
    const bool acquired = mu_.try_lock();
#ifdef MEDRELAX_DEADLOCK_DEBUG
    // A failed try_lock blocks nothing, so it constrains no order.
    if (acquired) DeadlockDetector::Instance().OnAcquire(site_);
#endif
    return acquired;
  }

 private:
  friend class CondVar;
  std::mutex mu_;
#ifdef MEDRELAX_DEADLOCK_DEBUG
  int site_;
#endif
};

/// Reader/writer lock with the same annotation + detector contract as
/// Mutex. Shared acquisitions feed the detector exactly like exclusive
/// ones: ordering cycles through reader sections still deadlock once a
/// writer joins, so the conservative direction is to order them all.
class MEDRELAX_CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(
      [[maybe_unused]] const char* name = "medrelax::SharedMutex")
#ifdef MEDRELAX_DEADLOCK_DEBUG
      : site_(DeadlockDetector::Instance().RegisterSite(name))
#endif
  {
  }

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() MEDRELAX_ACQUIRE() {
#ifdef MEDRELAX_DEADLOCK_DEBUG
    DeadlockDetector::Instance().OnAcquire(site_);
#endif
    mu_.lock();
  }

  void Unlock() MEDRELAX_RELEASE() {
    mu_.unlock();
#ifdef MEDRELAX_DEADLOCK_DEBUG
    DeadlockDetector::Instance().OnRelease(site_);
#endif
  }

  void LockShared() MEDRELAX_ACQUIRE_SHARED() {
#ifdef MEDRELAX_DEADLOCK_DEBUG
    DeadlockDetector::Instance().OnAcquire(site_);
#endif
    mu_.lock_shared();
  }

  void UnlockShared() MEDRELAX_RELEASE_SHARED() {
    mu_.unlock_shared();
#ifdef MEDRELAX_DEADLOCK_DEBUG
    DeadlockDetector::Instance().OnRelease(site_);
#endif
  }

 private:
  std::shared_mutex mu_;
#ifdef MEDRELAX_DEADLOCK_DEBUG
  int site_;
#endif
};

/// RAII exclusive lock over a Mutex.
class MEDRELAX_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MEDRELAX_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() MEDRELAX_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII shared (reader) lock over a SharedMutex.
class MEDRELAX_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) MEDRELAX_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderLock() MEDRELAX_RELEASE() { mu_.UnlockShared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII exclusive (writer) lock over a SharedMutex.
class MEDRELAX_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) MEDRELAX_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterLock() MEDRELAX_RELEASE() { mu_.Unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable bound to medrelax::Mutex. Wait takes the Mutex the
/// caller already holds (annotated MEDRELAX_REQUIRES); write wait loops as
/// explicit `while (!predicate) cv.Wait(mu);` — a predicate lambda would
/// be analyzed outside the lock's scope and defeat -Wthread-safety.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks until notified, and reacquires
  /// `mu` before returning. The detector keeps treating the site as held
  /// across the wait: the blocked thread acquires nothing meanwhile, so
  /// no spurious order edge can form. MEDRELAX_BLOCKING: an unbounded
  /// wait — never reachable from loop-thread-only code.
  void Wait(Mutex& mu) MEDRELAX_REQUIRES(mu) MEDRELAX_BLOCKING {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void NotifyOne() noexcept { cv_.notify_one(); }
  void NotifyAll() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace medrelax

#endif  // MEDRELAX_COMMON_MUTEX_H_
