#include "medrelax/common/logging.h"

#include <cstdlib>
#include <iostream>

namespace medrelax {

namespace {
LogLevel g_min_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_min_level = level; }
LogLevel GetLogLevel() { return g_min_level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level), fatal_(fatal) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::cerr << stream_.str() << std::endl;
  if (fatal_) std::abort();
}

}  // namespace internal
}  // namespace medrelax
