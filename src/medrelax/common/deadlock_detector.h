#ifndef MEDRELAX_COMMON_DEADLOCK_DETECTOR_H_
#define MEDRELAX_COMMON_DEADLOCK_DETECTOR_H_

#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace medrelax {

/// A process-wide lock-acquisition-order graph. Every medrelax::Mutex /
/// SharedMutex registers a *site* (its construction name; all instances
/// created with the same name share one site, e.g. the ResultCache shard
/// mutexes). When a thread acquires site B while holding site A, the edge
/// A -> B is recorded; if the reverse path B ->* A already exists, the two
/// acquisition sites are on a lock-order cycle that could deadlock under
/// the right interleaving, and the process aborts with both site names.
///
/// This catches inversions *deterministically*: the abort fires the first
/// time the second ordering is merely observed, on any schedule, even on
/// one core — where TSan's happens-before race detection would need the
/// threads to actually interleave into the deadlock.
///
/// The class is always compiled; the Mutex/SharedMutex hooks that feed it
/// are compiled in only under MEDRELAX_DEADLOCK_DEBUG (ON in the asan and
/// tsan presets, see CMakeLists.txt). Limitations, by design:
///   - granularity is the site, not the instance, so two instances sharing
///     a name are never ordered against each other (same-site nesting is
///     ignored rather than reported);
///   - shared (reader) acquisitions are ordered like exclusive ones, which
///     is conservative in the safe direction.
///
/// Thread-safe: the graph is guarded by an internal lock; the held-lock
/// stack is thread-local.
class DeadlockDetector {
 public:
  static DeadlockDetector& Instance();

  DeadlockDetector(const DeadlockDetector&) = delete;
  DeadlockDetector& operator=(const DeadlockDetector&) = delete;

  /// The site id for `name`, registering it on first sight. Stable for the
  /// process lifetime; the same name always yields the same id.
  [[nodiscard]] int RegisterSite(const char* name);

  [[nodiscard]] std::string SiteName(int site) const;

  /// Records that the calling thread is about to acquire `site`. Adds
  /// held-site -> site edges; on a would-be cycle, prints a one-line
  /// report naming both acquisition sites (and the full cycle path) to
  /// stderr and aborts the process.
  void OnAcquire(int site);

  /// Records that the calling thread released `site` (most recent
  /// acquisition first).
  void OnRelease(int site);

  /// True when the edge before -> after has been recorded (tests).
  [[nodiscard]] bool HasEdge(int before, int after) const;

  /// True when a directed path from -> to exists in the graph (tests).
  [[nodiscard]] bool PathExists(int from, int to) const;

  /// Sites currently held by the calling thread, acquisition order
  /// (tests and diagnostics).
  [[nodiscard]] std::vector<int> HeldByThisThread() const;

  /// Drops every recorded edge but keeps site registrations. Test-only:
  /// real code never unlearns an ordering.
  void ResetEdgesForTest();

 private:
  DeadlockDetector() = default;

  /// DFS over the adjacency lists; caller holds mu_.
  [[nodiscard]] bool PathExistsLocked(int from, int to) const;
  /// Prints the inversion report (both site names + cycle path) and
  /// aborts; caller holds mu_.
  [[noreturn]] void ReportCycleLocked(int held, int acquiring) const;

  mutable std::mutex mu_;
  std::unordered_map<std::string, int> site_ids_;
  std::vector<std::string> site_names_;
  /// edges_[a] holds every site ever acquired while a was held.
  std::vector<std::vector<int>> edges_;
};

}  // namespace medrelax

#endif  // MEDRELAX_COMMON_DEADLOCK_DETECTOR_H_
