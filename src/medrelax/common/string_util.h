#ifndef MEDRELAX_COMMON_STRING_UTIL_H_
#define MEDRELAX_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace medrelax {

/// Lowercases ASCII letters; other bytes pass through.
std::string ToLowerAscii(std::string_view s);

/// Removes leading/trailing ASCII whitespace.
std::string_view StripAscii(std::string_view s);

/// Splits on a single delimiter character; no empty-segment suppression.
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins items with the separator.
std::string Join(const std::vector<std::string>& items,
                 std::string_view separator);

/// True iff `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True iff `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace medrelax

#endif  // MEDRELAX_COMMON_STRING_UTIL_H_
