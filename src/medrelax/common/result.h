#ifndef MEDRELAX_COMMON_RESULT_H_
#define MEDRELAX_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "medrelax/common/status.h"

namespace medrelax {

/// Either a value of type T or an error Status (never both, never neither).
///
/// The Arrow-style companion of Status for fallible functions that produce a
/// value. Converting constructors allow `return value;` and `return status;`
/// directly from a function declared to return Result<T>.
///
/// Like Status, the class is [[nodiscard]]: a Result returned by value must
/// be consumed so errors cannot be silently dropped at the callsite.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}

  /// Constructs a failed result from a non-OK status. Passing an OK status
  /// is a programming error (there would be no value to hold).
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  /// True iff a value is present.
  [[nodiscard]] bool ok() const { return status_.ok(); }
  /// The status; OK when a value is present.
  [[nodiscard]] const Status& status() const { return status_; }

  /// Borrows the held value. Precondition: ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  /// Mutable access to the held value. Precondition: ok().
  T& value() & {
    assert(ok());
    return *value_;
  }
  /// Moves the held value out. Precondition: ok().
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the held value or `fallback` when in the error state.
  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  /// Pointer-style access. Precondition: ok().
  const T* operator->() const {
    assert(ok());
    return &*value_;
  }
  T* operator->() {
    assert(ok());
    return &*value_;
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates the error of a Result-producing expression, otherwise binds
/// its value to `lhs`.
#define MEDRELAX_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value();

#define MEDRELAX_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define MEDRELAX_ASSIGN_OR_RETURN_NAME(x, y) \
  MEDRELAX_ASSIGN_OR_RETURN_CONCAT(x, y)

#define MEDRELAX_ASSIGN_OR_RETURN(lhs, expr)                               \
  MEDRELAX_ASSIGN_OR_RETURN_IMPL(                                          \
      MEDRELAX_ASSIGN_OR_RETURN_NAME(_result_, __LINE__), lhs, expr)

}  // namespace medrelax

#endif  // MEDRELAX_COMMON_RESULT_H_
