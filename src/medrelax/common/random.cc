#include "medrelax/common/random.h"

#include <cassert>
#include <cmath>

namespace medrelax {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformU64(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextU64());  // full 64-bit range
  return lo + static_cast<int64_t>(UniformU64(span));
}

double Rng::UniformDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = UniformDouble();
  } while (u1 <= 1e-300);
  double u2 = UniformDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  cached_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  has_cached_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  assert(n > 0);
  // Rejection-inversion (Hörmann) is overkill for our corpus sizes; a direct
  // inverse-CDF walk over the normalized harmonic weights is exact and fast
  // enough since generators cache nothing across calls but n is modest.
  double h = 0.0;
  for (uint64_t k = 1; k <= n; ++k) h += 1.0 / std::pow(static_cast<double>(k), s);
  double u = UniformDouble() * h;
  double acc = 0.0;
  for (uint64_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k), s);
    if (acc >= u) return k;
  }
  return n;
}

uint64_t Rng::Poisson(double lambda) {
  if (lambda <= 0.0) return 0;
  const double limit = std::exp(-lambda);
  uint64_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= UniformDouble();
  } while (p > limit);
  return k - 1;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  assert(total > 0.0);
  double u = UniformDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += (weights[i] > 0.0 ? weights[i] : 0.0);
    if (acc >= u) return i;
  }
  return weights.size() - 1;
}

}  // namespace medrelax
