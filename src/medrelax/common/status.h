#ifndef MEDRELAX_COMMON_STATUS_H_
#define MEDRELAX_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace medrelax {

/// Machine-readable category of an operation outcome.
///
/// Mirrors the Arrow/RocksDB idiom: fallible operations in the public API
/// return a Status (or a Result<T>, see result.h) instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kUnimplemented = 7,
  kResourceExhausted = 8,
  kDeadlineExceeded = 9,
};

/// Returns a short stable name for a status code, e.g. "NotFound".
const char* StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation: a code plus a human-readable message.
///
/// A default-constructed Status is OK. Statuses are cheap to copy for the
/// OK case (no allocation) and carry a message only on error.
///
/// The class is [[nodiscard]]: any function returning Status by value must
/// have its return value consumed (checked, propagated, or explicitly
/// discarded with a cast through void and a comment saying why).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory for the OK status.
  static Status OK() { return Status(); }
  /// Factory for an InvalidArgument error.
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  /// Factory for a NotFound error.
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  /// Factory for an AlreadyExists error.
  static Status AlreadyExists(std::string message) {
    return Status(StatusCode::kAlreadyExists, std::move(message));
  }
  /// Factory for an OutOfRange error.
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  /// Factory for a FailedPrecondition error.
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  /// Factory for an Internal error.
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  /// Factory for an Unimplemented error.
  static Status Unimplemented(std::string message) {
    return Status(StatusCode::kUnimplemented, std::move(message));
  }
  /// Factory for a ResourceExhausted error (admission control: a bounded
  /// queue or quota is full and the request was rejected, not queued).
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  /// Factory for a DeadlineExceeded error (the request's deadline passed
  /// before a worker could produce its answer).
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }

  /// True iff the operation succeeded.
  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  /// The status code.
  [[nodiscard]] StatusCode code() const { return code_; }
  /// The error message; empty for OK.
  [[nodiscard]] const std::string& message() const { return message_; }

  /// True iff this status carries the given code.
  [[nodiscard]] bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  [[nodiscard]]
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  [[nodiscard]]
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  [[nodiscard]]
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  [[nodiscard]] bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  [[nodiscard]]
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  [[nodiscard]]
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  [[nodiscard]] bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  [[nodiscard]] bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }

  /// Renders "OK" or "<Code>: <message>".
  [[nodiscard]] std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Streams Status::ToString().
std::ostream& operator<<(std::ostream& os, const Status& status);

/// Propagates a non-OK Status to the caller.
#define MEDRELAX_RETURN_NOT_OK(expr)                 \
  do {                                               \
    ::medrelax::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                       \
  } while (false)

}  // namespace medrelax

#endif  // MEDRELAX_COMMON_STATUS_H_
