#ifndef MEDRELAX_COMMON_THREAD_ANNOTATIONS_H_
#define MEDRELAX_COMMON_THREAD_ANNOTATIONS_H_

// Clang thread-safety-analysis capability annotations, in the style of
// absl/base/thread_annotations.h. Under Clang the macros expand to
// __attribute__((...)) and `clang++ -Wthread-safety` machine-checks every
// annotated lock acquisition; under any other compiler they expand to
// nothing, so the annotations double as always-true documentation.
//
// The annotated lock types that carry these capabilities live in
// medrelax/common/mutex.h; docs/CONCURRENCY.md is the cookbook.

#if defined(__clang__)
#define MEDRELAX_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define MEDRELAX_THREAD_ANNOTATION_ATTRIBUTE_(x)
#endif

// Declares a class to be a capability (a lock). The string names the
// capability kind in diagnostics ("mutex", "shared_mutex", ...).
#define MEDRELAX_CAPABILITY(x) \
  MEDRELAX_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))

// Declares an RAII class whose constructor acquires and destructor
// releases a capability (MutexLock / ReaderLock / WriterLock).
#define MEDRELAX_SCOPED_CAPABILITY \
  MEDRELAX_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

// On a data member: reads/writes require holding the named capability
// (shared access suffices for reads, exclusive for writes).
#define MEDRELAX_GUARDED_BY(x) \
  MEDRELAX_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))

// On a pointer member: the pointed-to data (not the pointer itself) is
// protected by the named capability.
#define MEDRELAX_PT_GUARDED_BY(x) \
  MEDRELAX_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

// Documents a required acquisition order between two locks.
#define MEDRELAX_ACQUIRED_BEFORE(...) \
  MEDRELAX_THREAD_ANNOTATION_ATTRIBUTE_(acquired_before(__VA_ARGS__))
#define MEDRELAX_ACQUIRED_AFTER(...) \
  MEDRELAX_THREAD_ANNOTATION_ATTRIBUTE_(acquired_after(__VA_ARGS__))

// On a function: the caller must hold the capability (exclusively /
// shared) when calling, and still holds it on return.
#define MEDRELAX_REQUIRES(...) \
  MEDRELAX_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))
#define MEDRELAX_REQUIRES_SHARED(...) \
  MEDRELAX_THREAD_ANNOTATION_ATTRIBUTE_(requires_shared_capability(__VA_ARGS__))

// On a function: it acquires the capability (held on return, not on
// entry). No argument means `this`.
#define MEDRELAX_ACQUIRE(...) \
  MEDRELAX_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))
#define MEDRELAX_ACQUIRE_SHARED(...) \
  MEDRELAX_THREAD_ANNOTATION_ATTRIBUTE_(acquire_shared_capability(__VA_ARGS__))

// On a function: it releases the capability (held on entry, not on
// return). The generic form releases exclusive or shared alike.
#define MEDRELAX_RELEASE(...) \
  MEDRELAX_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))
#define MEDRELAX_RELEASE_SHARED(...) \
  MEDRELAX_THREAD_ANNOTATION_ATTRIBUTE_(release_shared_capability(__VA_ARGS__))

// On a function returning bool: acquires the capability iff the return
// value equals the first argument.
#define MEDRELAX_TRY_ACQUIRE(...) \
  MEDRELAX_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_capability(__VA_ARGS__))

// On a function: the caller must NOT hold the capability (the function
// acquires it itself, or calling with it held would self-deadlock).
#define MEDRELAX_EXCLUDES(...) \
  MEDRELAX_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

// Runtime assertion that the capability is held (no acquire/release).
#define MEDRELAX_ASSERT_CAPABILITY(x) \
  MEDRELAX_THREAD_ANNOTATION_ATTRIBUTE_(assert_capability(x))

// On a function returning a reference to a capability.
#define MEDRELAX_RETURN_CAPABILITY(x) \
  MEDRELAX_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))

// Escape hatch: turns the analysis off for one function. Every use needs
// a comment saying why; serve/ must stay escape-free (CI greps).
#define MEDRELAX_NO_THREAD_SAFETY_ANALYSIS \
  MEDRELAX_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)

// --- Semantic-pass vocabulary (scripts/lint/semantic/) ---------------------
//
// Thread-affinity and blocking annotations checked by the project's
// libclang semantic analyzer, the same way the capability macros above
// are checked by -Wthread-safety. Under clang they expand to
// __attribute__((annotate(...))) so the AST carries them; under gcc they
// vanish (documentation only — the analyzer reads the tokens either
// way). docs/CONCURRENCY.md ("Thread affinity") is the model; the rule
// catalog lives in docs/TOOLING.md.

// On a function or method: may only execute on the event-loop thread.
// The affinity rule demands every caller be loop-thread-only itself, a
// task handed to EventLoop::Post, or a callback declared to fire on the
// loop. On a data member: the member is confined to the loop thread —
// an alternative to MEDRELAX_GUARDED_BY that the guarded-by invariant
// lint accepts, because the affinity rules (not a lock) are what keeps
// the accesses serialized.
#define MEDRELAX_LOOP_THREAD_ONLY \
  MEDRELAX_THREAD_ANNOTATION_ATTRIBUTE_(annotate("medrelax::loop_thread_only"))

// On a function: it may block the calling thread for real time — file
// I/O, an offline rebuild, future::get/thread::join, a condition wait.
// The no-blocking rule proves these are unreachable from any
// loop-thread-only function: one blocked reactor stalls every session.
#define MEDRELAX_BLOCKING \
  MEDRELAX_THREAD_ANNOTATION_ATTRIBUTE_(annotate("medrelax::blocking"))

// On a function (or std::function-typed member) taking/holding a
// callable: the callable executes on the event-loop thread. Lambdas
// handed to such a sink are analyzed as loop-thread-only code; the
// function itself stays callable from any thread (EventLoop::Post is
// the archetype).
#define MEDRELAX_POSTS_TO_LOOP \
  MEDRELAX_THREAD_ANNOTATION_ATTRIBUTE_(annotate("medrelax::posts_to_loop"))

// On an accessor or data member: the bytes it exposes cross a trust
// boundary — a mapped snapshot image an operator can RELOAD from any
// path, or a TCP connection's inbound buffer. The untrusted-bytes rule
// flags reinterpret_cast, pointer arithmetic, and raw indexing on values
// tainted by these outside the blessed validating accessors
// (flat/image_view.*, io/mmap_file.*); everything else consumes the
// bounds-checked typed readers they return.
#define MEDRELAX_UNTRUSTED_BYTES \
  MEDRELAX_THREAD_ANNOTATION_ATTRIBUTE_(annotate("medrelax::untrusted_bytes"))

#endif  // MEDRELAX_COMMON_THREAD_ANNOTATIONS_H_
