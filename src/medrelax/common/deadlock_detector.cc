#include "medrelax/common/deadlock_detector.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace medrelax {

namespace {

/// The calling thread's stack of held sites, in acquisition order.
std::vector<int>& HeldStack() {
  static thread_local std::vector<int> stack;
  return stack;
}

}  // namespace

DeadlockDetector& DeadlockDetector::Instance() {
  static DeadlockDetector* instance =
      new DeadlockDetector();  // lint:allow(raw-new-delete) leaked singleton:
                               // mutexes may unregister during static
                               // destruction, so the graph must outlive them
  return *instance;
}

int DeadlockDetector::RegisterSite(const char* name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] =
      site_ids_.emplace(name, static_cast<int>(site_names_.size()));
  if (inserted) {
    site_names_.emplace_back(name);
    edges_.emplace_back();
  }
  return it->second;
}

std::string DeadlockDetector::SiteName(int site) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (site < 0 || site >= static_cast<int>(site_names_.size())) {
    return "<unknown site>";
  }
  return site_names_[static_cast<size_t>(site)];
}

void DeadlockDetector::OnAcquire(int site) {
  std::vector<int>& held = HeldStack();
  if (!held.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    for (int h : held) {
      // Per-site granularity: two instances sharing a site are never
      // ordered against each other (see the class comment).
      if (h == site) continue;
      std::vector<int>& out = edges_[static_cast<size_t>(h)];
      if (std::find(out.begin(), out.end(), site) != out.end()) continue;
      if (PathExistsLocked(site, h)) ReportCycleLocked(h, site);
      out.push_back(site);
    }
  }
  held.push_back(site);
}

void DeadlockDetector::OnRelease(int site) {
  std::vector<int>& held = HeldStack();
  // Release the most recent matching acquisition; out-of-order release of
  // distinct sites (legal, if unusual) still unwinds correctly.
  auto it = std::find(held.rbegin(), held.rend(), site);
  if (it != held.rend()) held.erase(std::next(it).base());
}

bool DeadlockDetector::HasEdge(int before, int after) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (before < 0 || before >= static_cast<int>(edges_.size())) return false;
  const std::vector<int>& out = edges_[static_cast<size_t>(before)];
  return std::find(out.begin(), out.end(), after) != out.end();
}

bool DeadlockDetector::PathExists(int from, int to) const {
  std::lock_guard<std::mutex> lock(mu_);
  return PathExistsLocked(from, to);
}

std::vector<int> DeadlockDetector::HeldByThisThread() const {
  return HeldStack();
}

void DeadlockDetector::ResetEdgesForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::vector<int>& out : edges_) out.clear();
}

bool DeadlockDetector::PathExistsLocked(int from, int to) const {
  if (from < 0 || from >= static_cast<int>(edges_.size())) return false;
  if (from == to) return true;
  std::vector<bool> visited(edges_.size(), false);
  std::vector<int> frontier{from};
  visited[static_cast<size_t>(from)] = true;
  while (!frontier.empty()) {
    const int node = frontier.back();
    frontier.pop_back();
    for (int next : edges_[static_cast<size_t>(node)]) {
      if (next == to) return true;
      if (!visited[static_cast<size_t>(next)]) {
        visited[static_cast<size_t>(next)] = true;
        frontier.push_back(next);
      }
    }
  }
  return false;
}

void DeadlockDetector::ReportCycleLocked(int held, int acquiring) const {
  // Recover one acquiring ->* held path by DFS, keeping the trail.
  std::vector<int> path{acquiring};
  std::vector<bool> visited(edges_.size(), false);
  visited[static_cast<size_t>(acquiring)] = true;
  // Depth-first with an explicit trail; the path is known to exist.
  struct Frame {
    int node;
    size_t next_edge;
  };
  std::vector<Frame> stack{{acquiring, 0}};
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.node == held) break;
    const std::vector<int>& out = edges_[static_cast<size_t>(frame.node)];
    if (frame.next_edge >= out.size()) {
      stack.pop_back();
      path.pop_back();
      continue;
    }
    const int next = out[frame.next_edge++];
    if (visited[static_cast<size_t>(next)]) continue;
    visited[static_cast<size_t>(next)] = true;
    stack.push_back({next, 0});
    path.push_back(next);
  }

  std::string cycle;
  for (int node : path) {
    cycle += "\"" + site_names_[static_cast<size_t>(node)] + "\" -> ";
  }
  cycle += "\"" + site_names_[static_cast<size_t>(acquiring)] + "\"";
  std::fprintf(
      stderr,
      "[medrelax] lock-order inversion: acquiring \"%s\" while holding "
      "\"%s\", but the established acquisition order is %s; "
      "this ordering can deadlock, aborting\n",
      site_names_[static_cast<size_t>(acquiring)].c_str(),
      site_names_[static_cast<size_t>(held)].c_str(), cycle.c_str());
  std::abort();
}

}  // namespace medrelax
