#ifndef MEDRELAX_COMMON_RANDOM_H_
#define MEDRELAX_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace medrelax {

/// Deterministic pseudo-random generator (xoshiro256**, SplitMix64-seeded).
///
/// All synthetic data generation in this repository flows through Rng so
/// that every experiment is reproducible from a single seed. The engine is
/// self-contained (no <random> engines) so the stream is identical across
/// standard libraries and platforms.
class Rng {
 public:
  /// Seeds the generator; equal seeds yield equal streams.
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t NextU64();

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  uint64_t UniformU64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal via Box-Muller.
  double Gaussian();

  /// Zipf-distributed rank in [1, n] with exponent s (> 0), by inverse-CDF
  /// over precomputable harmonic weights. Used by the corpus generator to
  /// skew concept mention frequencies.
  uint64_t Zipf(uint64_t n, double s);

  /// Poisson draw with mean lambda (Knuth's method; lambda expected small).
  uint64_t Poisson(double lambda);

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformU64(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Picks one index in [0, weights.size()) proportional to weights.
  /// Precondition: at least one weight > 0.
  size_t WeightedIndex(const std::vector<double>& weights);

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace medrelax

#endif  // MEDRELAX_COMMON_RANDOM_H_
