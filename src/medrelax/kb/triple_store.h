#ifndef MEDRELAX_KB_TRIPLE_STORE_H_
#define MEDRELAX_KB_TRIPLE_STORE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "medrelax/common/status.h"
#include "medrelax/kb/instance_store.h"
#include "medrelax/ontology/domain_ontology.h"

namespace medrelax {

/// One relationship assertion between two ABox individuals:
/// subject --relationship--> object, e.g. aspirin-X -treat-> indication-Y.
struct Triple {
  InstanceId subject = kInvalidInstance;
  RelationshipId relationship = kInvalidRelationship;
  InstanceId object = kInvalidInstance;

  friend bool operator==(const Triple& a, const Triple& b) {
    return a.subject == b.subject && a.relationship == b.relationship &&
           a.object == b.object;
  }
};

/// Index over relationship assertions with subject-side and object-side
/// lookups. This is the query-answering half of the KB: the conversational
/// and NLQ layers translate interpreted queries into triple scans.
class TripleStore {
 public:
  TripleStore() = default;

  TripleStore(TripleStore&&) = default;
  TripleStore& operator=(TripleStore&&) = default;
  TripleStore(const TripleStore&) = delete;
  TripleStore& operator=(const TripleStore&) = delete;

  /// Adds an assertion; duplicates are ignored (idempotent).
  [[nodiscard]]
  Status AddTriple(InstanceId subject, RelationshipId relationship,
                   InstanceId object);

  /// Number of stored (distinct) triples.
  [[nodiscard]] size_t num_triples() const { return triples_.size(); }

  /// All triples in insertion order.
  [[nodiscard]] const std::vector<Triple>& triples() const { return triples_; }

  /// Objects o with (subject, relationship, o).
  std::vector<InstanceId> Objects(InstanceId subject,
                                  RelationshipId relationship) const;

  /// Subjects s with (s, relationship, object).
  std::vector<InstanceId> Subjects(RelationshipId relationship,
                                   InstanceId object) const;

  /// True iff the exact triple is stored.
  bool Contains(InstanceId subject, RelationshipId relationship,
                InstanceId object) const;

 private:
  static uint64_t Key(uint32_t a, uint32_t b) {
    return (static_cast<uint64_t>(a) << 32) | b;
  }

  std::vector<Triple> triples_;
  // (subject, relationship) -> objects ; (object, relationship) -> subjects.
  std::unordered_map<uint64_t, std::vector<InstanceId>> sp_index_;
  std::unordered_map<uint64_t, std::vector<InstanceId>> op_index_;
};

}  // namespace medrelax

#endif  // MEDRELAX_KB_TRIPLE_STORE_H_
