#include "medrelax/kb/conjunctive_query.h"

#include <algorithm>

#include "medrelax/common/string_util.h"

namespace medrelax {

Result<std::vector<InstanceId>> ConjunctiveQueryEvaluator::Evaluate(
    const ConjunctiveQuery& query) const {
  if (query.answer_var.empty()) {
    return Status::InvalidArgument("Evaluate: no answer variable");
  }

  // Collect the variables and initialize candidate sets.
  std::unordered_map<std::string, std::unordered_set<InstanceId>> sets;
  auto init_var = [&](const std::string& var) -> Status {
    if (sets.count(var) > 0) return Status::OK();
    std::unordered_set<InstanceId> candidates;
    auto grounded = query.var_groundings.find(var);
    auto typed = query.var_types.find(var);
    if (grounded != query.var_groundings.end()) {
      candidates.insert(grounded->second.begin(), grounded->second.end());
      if (typed != query.var_types.end()) {
        // Grounding and type: keep the intersection.
        for (auto it = candidates.begin(); it != candidates.end();) {
          if (kb_->instances.instance(*it).concept_id != typed->second) {
            it = candidates.erase(it);
          } else {
            ++it;
          }
        }
      }
    } else if (typed != query.var_types.end()) {
      for (InstanceId i : kb_->instances.InstancesOfConcept(typed->second)) {
        candidates.insert(i);
      }
    } else {
      // Untyped, ungrounded: admissible only when constrained by a
      // pattern; start from the instances the relationship can reach.
      bool constrained = false;
      for (const QueryPattern& p : query.patterns) {
        if (p.subject_var != var && p.object_var != var) continue;
        constrained = true;
        if (p.relationship >= kb_->ontology.num_relationships()) {
          return Status::InvalidArgument("Evaluate: unknown relationship");
        }
        const Relationship& rel = kb_->ontology.relationship(p.relationship);
        OntologyConceptId concept_id =
            p.subject_var == var ? rel.domain : rel.range;
        for (InstanceId i :
             kb_->instances.InstancesOfConcept(concept_id)) {
          candidates.insert(i);
        }
      }
      if (!constrained) {
        return Status::InvalidArgument(StrFormat(
            "Evaluate: variable '%s' is unconstrained", var.c_str()));
      }
    }
    sets.emplace(var, std::move(candidates));
    return Status::OK();
  };

  MEDRELAX_RETURN_NOT_OK(init_var(query.answer_var));
  for (const QueryPattern& p : query.patterns) {
    if (p.relationship >= kb_->ontology.num_relationships()) {
      return Status::InvalidArgument("Evaluate: unknown relationship");
    }
    MEDRELAX_RETURN_NOT_OK(init_var(p.subject_var));
    MEDRELAX_RETURN_NOT_OK(init_var(p.object_var));
  }
  for (const auto& [var, grounding] : query.var_groundings) {
    (void)grounding;
    MEDRELAX_RETURN_NOT_OK(init_var(var));
  }

  // Semi-join fixpoint, both directions per pattern.
  bool changed = true;
  size_t guard = 2 * query.patterns.size() + 2;
  while (changed && guard-- > 0) {
    changed = false;
    for (const QueryPattern& p : query.patterns) {
      std::unordered_set<InstanceId>& subjects = sets[p.subject_var];
      std::unordered_set<InstanceId>& objects = sets[p.object_var];
      for (auto it = subjects.begin(); it != subjects.end();) {
        bool keep = false;
        for (InstanceId o : kb_->triples.Objects(*it, p.relationship)) {
          if (objects.count(o) > 0) {
            keep = true;
            break;
          }
        }
        if (keep) {
          ++it;
        } else {
          it = subjects.erase(it);
          changed = true;
        }
      }
      for (auto it = objects.begin(); it != objects.end();) {
        bool keep = false;
        for (InstanceId s : kb_->triples.Subjects(p.relationship, *it)) {
          if (subjects.count(s) > 0) {
            keep = true;
            break;
          }
        }
        if (keep) {
          ++it;
        } else {
          it = objects.erase(it);
          changed = true;
        }
      }
    }
  }

  const std::unordered_set<InstanceId>& answers = sets[query.answer_var];
  std::vector<InstanceId> out(answers.begin(), answers.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace medrelax
