#ifndef MEDRELAX_KB_KB_QUERY_H_
#define MEDRELAX_KB_KB_QUERY_H_

#include <string>
#include <vector>

#include "medrelax/common/result.h"
#include "medrelax/kb/instance_store.h"
#include "medrelax/kb/triple_store.h"
#include "medrelax/ontology/context.h"
#include "medrelax/ontology/domain_ontology.h"

namespace medrelax {

/// The given medical KB: domain ontology (TBox) + instances and assertions
/// (ABox). This is the *MED*-shaped substrate every other module consumes.
struct KnowledgeBase {
  DomainOntology ontology;
  InstanceStore instances;
  TripleStore triples;

  KnowledgeBase() = default;
  KnowledgeBase(KnowledgeBase&&) = default;
  KnowledgeBase& operator=(KnowledgeBase&&) = default;
  KnowledgeBase(const KnowledgeBase&) = delete;
  KnowledgeBase& operator=(const KnowledgeBase&) = delete;
};

/// Conjunctive query helpers over a KnowledgeBase. The NLI layers and the
/// examples use these to materialize answers once relaxation has produced
/// in-KB instances.
class KbQuery {
 public:
  /// Borrows `kb`; the KB must outlive the query helper.
  explicit KbQuery(const KnowledgeBase* kb) : kb_(kb) {}

  /// Resolves the relationship id for a context (domain-rel-range triple);
  /// NotFound when the ontology has no such relationship.
  [[nodiscard]]
  Result<RelationshipId> ResolveContext(const Context& context) const;

  /// Instances on the domain side of `context` connected to the given
  /// range-side instance, e.g. for context Indication-hasFinding-Finding and
  /// instance "fever": the indications that have finding fever.
  std::vector<InstanceId> SubjectsFor(const Context& context,
                                      InstanceId range_instance) const;

  /// Follows a chain of relationships forward from `start` instances:
  /// result = objects reachable via rel[0], then rel[1], ... Deduplicated,
  /// order of first reach.
  std::vector<InstanceId> FollowPath(
      const std::vector<InstanceId>& start,
      const std::vector<RelationshipId>& path) const;

  /// Follows a chain of relationships backward (object -> subjects).
  std::vector<InstanceId> FollowPathReverse(
      const std::vector<InstanceId>& start,
      const std::vector<RelationshipId>& path) const;

  /// Convenience used throughout the examples: "which drugs treat finding
  /// F" — walks range-side instance back to domain subjects across the two
  /// hops Drug-<rel1>-X-<rel2>-F given by the relationship names.
  Result<std::vector<InstanceId>> DrugsForFinding(
      const std::string& drug_rel_name, const std::string& finding_rel_name,
      InstanceId finding) const;

 private:
  const KnowledgeBase* kb_;
};

}  // namespace medrelax

#endif  // MEDRELAX_KB_KB_QUERY_H_
