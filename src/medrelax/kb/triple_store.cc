#include "medrelax/kb/triple_store.h"

#include <algorithm>

namespace medrelax {

Status TripleStore::AddTriple(InstanceId subject, RelationshipId relationship,
                              InstanceId object) {
  if (subject == kInvalidInstance || object == kInvalidInstance ||
      relationship == kInvalidRelationship) {
    return Status::InvalidArgument("AddTriple: invalid component");
  }
  if (Contains(subject, relationship, object)) return Status::OK();
  triples_.push_back({subject, relationship, object});
  sp_index_[Key(subject, relationship)].push_back(object);
  op_index_[Key(object, relationship)].push_back(subject);
  return Status::OK();
}

std::vector<InstanceId> TripleStore::Objects(
    InstanceId subject, RelationshipId relationship) const {
  auto it = sp_index_.find(Key(subject, relationship));
  return it == sp_index_.end() ? std::vector<InstanceId>{} : it->second;
}

std::vector<InstanceId> TripleStore::Subjects(RelationshipId relationship,
                                              InstanceId object) const {
  auto it = op_index_.find(Key(object, relationship));
  return it == op_index_.end() ? std::vector<InstanceId>{} : it->second;
}

bool TripleStore::Contains(InstanceId subject, RelationshipId relationship,
                           InstanceId object) const {
  auto it = sp_index_.find(Key(subject, relationship));
  if (it == sp_index_.end()) return false;
  return std::find(it->second.begin(), it->second.end(), object) !=
         it->second.end();
}

}  // namespace medrelax
