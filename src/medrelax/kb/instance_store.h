#ifndef MEDRELAX_KB_INSTANCE_STORE_H_
#define MEDRELAX_KB_INSTANCE_STORE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "medrelax/common/result.h"
#include "medrelax/ontology/domain_ontology.h"

namespace medrelax {

/// Identifier of an instance (ABox individual) in an InstanceStore.
using InstanceId = uint32_t;

/// Sentinel for "no instance".
inline constexpr InstanceId kInvalidInstance = UINT32_MAX;

/// One ABox individual: a named instance of a domain-ontology concept,
/// e.g. "fever" is an instance of "Finding" (Section 2.1, Figure 3).
struct Instance {
  std::string name;
  OntologyConceptId concept_id = kInvalidOntologyConcept;
};

/// The instance data (ABox) of the given KB, stored separately from the
/// domain ontology for query answering (Section 2.1). Names are unique per
/// concept but may repeat across concepts; lookups are by normalized name.
class InstanceStore {
 public:
  InstanceStore() = default;

  InstanceStore(InstanceStore&&) = default;
  InstanceStore& operator=(InstanceStore&&) = default;
  InstanceStore(const InstanceStore&) = delete;
  InstanceStore& operator=(const InstanceStore&) = delete;

  /// Adds an instance of `concept` named `name` (stored verbatim; lookups
  /// normalize). Fails if the same (concept, name) pair exists.
  [[nodiscard]]
  Result<InstanceId> AddInstance(std::string name,
                                 OntologyConceptId concept_id);

  [[nodiscard]] size_t num_instances() const { return instances_.size(); }

  /// The instance record. Precondition: valid id.
  [[nodiscard]]
  const Instance& instance(InstanceId id) const { return instances_[id]; }

  /// True iff the id addresses an existing instance.
  [[nodiscard]]
  bool IsValid(InstanceId id) const { return id < instances_.size(); }

  /// All instances of the given ontology concept, in insertion order.
  const std::vector<InstanceId>& InstancesOfConcept(
      OntologyConceptId concept_id) const;

  /// All instances whose normalized name equals the normalized input
  /// (possibly several, across concepts).
  [[nodiscard]] std::vector<InstanceId> FindByName(std::string_view name) const;

  /// Like FindByName but restricted to instances of `concept`; returns
  /// kInvalidInstance when absent.
  InstanceId FindByNameAndConcept(std::string_view name,
                                  OntologyConceptId concept_id) const;

 private:
  std::vector<Instance> instances_;
  std::unordered_map<std::string, std::vector<InstanceId>> by_normalized_name_;
  std::vector<std::vector<InstanceId>> by_concept_;
  std::vector<InstanceId> empty_;
};

}  // namespace medrelax

#endif  // MEDRELAX_KB_INSTANCE_STORE_H_
