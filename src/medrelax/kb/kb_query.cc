#include "medrelax/kb/kb_query.h"

#include <unordered_set>

#include "medrelax/common/string_util.h"

namespace medrelax {

Result<RelationshipId> KbQuery::ResolveContext(const Context& context) const {
  const DomainOntology& onto = kb_->ontology;
  OntologyConceptId domain = onto.FindConcept(context.domain);
  OntologyConceptId range = onto.FindConcept(context.range);
  if (domain == kInvalidOntologyConcept || range == kInvalidOntologyConcept) {
    return Status::NotFound(StrFormat("context '%s': unknown concept",
                                      context.Label().c_str()));
  }
  for (RelationshipId id : onto.RelationshipsWithDomain(domain)) {
    const Relationship& r = onto.relationship(id);
    if (r.name == context.relationship && r.range == range) return id;
  }
  return Status::NotFound(StrFormat("context '%s': no such relationship",
                                    context.Label().c_str()));
}

std::vector<InstanceId> KbQuery::SubjectsFor(const Context& context,
                                             InstanceId range_instance) const {
  Result<RelationshipId> rel = ResolveContext(context);
  if (!rel.ok()) return {};
  return kb_->triples.Subjects(*rel, range_instance);
}

namespace {

std::vector<InstanceId> Dedup(std::vector<InstanceId> items) {
  std::unordered_set<InstanceId> seen;
  std::vector<InstanceId> out;
  out.reserve(items.size());
  for (InstanceId id : items) {
    if (seen.insert(id).second) out.push_back(id);
  }
  return out;
}

}  // namespace

std::vector<InstanceId> KbQuery::FollowPath(
    const std::vector<InstanceId>& start,
    const std::vector<RelationshipId>& path) const {
  std::vector<InstanceId> frontier = start;
  for (RelationshipId rel : path) {
    std::vector<InstanceId> next;
    for (InstanceId s : frontier) {
      for (InstanceId o : kb_->triples.Objects(s, rel)) next.push_back(o);
    }
    frontier = Dedup(std::move(next));
  }
  return frontier;
}

std::vector<InstanceId> KbQuery::FollowPathReverse(
    const std::vector<InstanceId>& start,
    const std::vector<RelationshipId>& path) const {
  std::vector<InstanceId> frontier = start;
  for (RelationshipId rel : path) {
    std::vector<InstanceId> next;
    for (InstanceId o : frontier) {
      for (InstanceId s : kb_->triples.Subjects(rel, o)) next.push_back(s);
    }
    frontier = Dedup(std::move(next));
  }
  return frontier;
}

Result<std::vector<InstanceId>> KbQuery::DrugsForFinding(
    const std::string& drug_rel_name, const std::string& finding_rel_name,
    InstanceId finding) const {
  const DomainOntology& onto = kb_->ontology;
  if (!kb_->instances.IsValid(finding)) {
    return Status::InvalidArgument("DrugsForFinding: invalid finding id");
  }
  OntologyConceptId finding_concept = kb_->instances.instance(finding).concept_id;

  // Step 1: range-side walk — relationships named `finding_rel_name` whose
  // range matches the finding's concept (e.g. hasFinding into Finding).
  std::vector<InstanceId> mid;
  for (RelationshipId id : onto.RelationshipsWithRange(finding_concept)) {
    if (onto.relationship(id).name != finding_rel_name) continue;
    for (InstanceId s : kb_->triples.Subjects(id, finding)) mid.push_back(s);
  }
  mid = Dedup(std::move(mid));

  // Step 2: walk from the intermediate instances back to the drugs via the
  // relationship named `drug_rel_name` (e.g. treat / cause).
  std::vector<InstanceId> drugs;
  for (InstanceId m : mid) {
    OntologyConceptId mid_concept = kb_->instances.instance(m).concept_id;
    for (RelationshipId id : onto.RelationshipsWithRange(mid_concept)) {
      if (onto.relationship(id).name != drug_rel_name) continue;
      for (InstanceId s : kb_->triples.Subjects(id, m)) drugs.push_back(s);
    }
  }
  return Dedup(std::move(drugs));
}

}  // namespace medrelax
