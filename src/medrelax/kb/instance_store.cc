#include "medrelax/kb/instance_store.h"

#include "medrelax/common/string_util.h"
#include "medrelax/text/normalize.h"

namespace medrelax {

Result<InstanceId> InstanceStore::AddInstance(std::string name,
                                              OntologyConceptId concept_id) {
  if (concept_id == kInvalidOntologyConcept) {
    return Status::InvalidArgument(
        StrFormat("AddInstance('%s'): invalid concept", name.c_str()));
  }
  std::string normalized = NormalizeTerm(name);
  if (normalized.empty()) {
    return Status::InvalidArgument("AddInstance: empty instance name");
  }
  if (by_concept_.size() <= concept_id) by_concept_.resize(concept_id + 1);
  for (InstanceId existing : by_normalized_name_[normalized]) {
    if (instances_[existing].concept_id == concept_id) {
      return Status::AlreadyExists(StrFormat(
          "instance '%s' of concept %u already exists", name.c_str(),
          concept_id));
    }
  }
  InstanceId id = static_cast<InstanceId>(instances_.size());
  instances_.push_back({std::move(name), concept_id});
  by_normalized_name_[normalized].push_back(id);
  by_concept_[concept_id].push_back(id);
  return id;
}

const std::vector<InstanceId>& InstanceStore::InstancesOfConcept(
    OntologyConceptId concept_id) const {
  if (concept_id >= by_concept_.size()) return empty_;
  return by_concept_[concept_id];
}

std::vector<InstanceId> InstanceStore::FindByName(std::string_view name) const {
  auto it = by_normalized_name_.find(NormalizeTerm(name));
  if (it == by_normalized_name_.end()) return {};
  return it->second;
}

InstanceId InstanceStore::FindByNameAndConcept(std::string_view name,
                                               OntologyConceptId concept_id) const {
  for (InstanceId id : FindByName(name)) {
    if (instances_[id].concept_id == concept_id) return id;
  }
  return kInvalidInstance;
}

}  // namespace medrelax
