#ifndef MEDRELAX_KB_CONJUNCTIVE_QUERY_H_
#define MEDRELAX_KB_CONJUNCTIVE_QUERY_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "medrelax/common/result.h"
#include "medrelax/kb/kb_query.h"

namespace medrelax {

/// One triple pattern of a conjunctive query: ?subject --rel--> ?object.
struct QueryPattern {
  std::string subject_var;
  RelationshipId relationship = kInvalidRelationship;
  std::string object_var;
};

/// A conjunctive query over the ABox — the structured-query target the NLQ
/// layer compiles interpretations into (the paper's NLQ system emits SQL;
/// a conjunctive query over the triple store is the equivalent here).
///
/// Variables are names; each can carry a type constraint (an ontology
/// concept) and/or an explicit grounding (a set of admissible instances,
/// e.g. the data-value evidences of Section 6.2).
struct ConjunctiveQuery {
  std::vector<QueryPattern> patterns;
  /// Optional type constraint per variable: the variable may only bind to
  /// instances of this ontology concept.
  std::unordered_map<std::string, OntologyConceptId> var_types;
  /// Optional explicit groundings per variable.
  std::unordered_map<std::string, std::vector<InstanceId>> var_groundings;
  /// The variable whose bindings are the answer.
  std::string answer_var;
};

/// Evaluates conjunctive queries by constraint propagation: every variable
/// starts from its grounding (or all instances of its type), and the
/// patterns are enforced by semi-joins until a fixpoint. Exact for acyclic
/// (tree-shaped) pattern graphs — which is what the NLQ layer produces —
/// and a sound over-approximation otherwise.
class ConjunctiveQueryEvaluator {
 public:
  /// Borrows `kb`, which must outlive the evaluator.
  explicit ConjunctiveQueryEvaluator(const KnowledgeBase* kb) : kb_(kb) {}

  /// Returns the sorted bindings of the answer variable. Fails with
  /// InvalidArgument when the query names no answer variable, references
  /// an unknown relationship, or a variable has neither a type nor a
  /// grounding and appears in no pattern.
  Result<std::vector<InstanceId>> Evaluate(
      const ConjunctiveQuery& query) const;

 private:
  const KnowledgeBase* kb_;
};

}  // namespace medrelax

#endif  // MEDRELAX_KB_CONJUNCTIVE_QUERY_H_
